"""Runtime seam tests: protocol conformance and sim-adapter fidelity.

The critical invariant is that :class:`SimRuntime` is a *pure
aggregate*: a system built through it must produce exactly the event
schedule (and therefore delivery log) of one wired from ``Scheduler`` +
``Network`` by hand — that is what keeps the sim goldens bit-identical
across the seam extraction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core import PrimCastProcess, uniform_groups
from repro.election import make_oracles
from repro.net.runtime import (
    LeaderOracle,
    ProcessLike,
    Runtime,
    SchedulerAPI,
    SimRuntime,
    TimerHandle,
    TransportAPI,
)
from repro.sim import ConstantLatency, CostModel, Network, Scheduler, child_rng


def test_sim_classes_satisfy_the_seam_protocols():
    scheduler = Scheduler()
    network = Network(scheduler, ConstantLatency(1.0), child_rng(1, "latency"))
    assert isinstance(scheduler, SchedulerAPI)
    assert isinstance(network, TransportAPI)
    handle = scheduler.call_after(5.0, lambda: None)
    assert isinstance(handle, TimerHandle)
    config = uniform_groups(1, 3)
    proc = PrimCastProcess(0, config, scheduler, network, CostModel())
    assert isinstance(proc, ProcessLike)
    oracles = make_oracles(config.groups, {0: proc}, scheduler)
    assert all(isinstance(o, LeaderOracle) for o in oracles.values())


def test_net_classes_satisfy_the_seam_protocols():
    # Structural checks only — no event loop needed for isinstance on
    # runtime_checkable protocols.
    from repro.net.election import HeartbeatOmega
    from repro.net.host import NetScheduler, TransportFacade

    assert issubclass(NetScheduler, object)
    assert isinstance(
        HeartbeatOmega.__init__, object
    )  # importable without a loop
    # Protocol conformance is attribute-structural:
    for attr in ("_heap", "_seq", "schedule", "call_at", "call_after"):
        assert hasattr(NetScheduler, attr) or attr in ("_heap", "_seq")
    for attr in ("register", "transmit"):
        assert hasattr(TransportFacade, attr)


def _run_workload(
    scheduler: Scheduler,
    network: Network,
    runtime: Runtime = None,
) -> Dict[int, List[Tuple[Any, int]]]:
    """Wire a 2x3 primcast system onto the given substrate, drive a
    small deterministic workload, return pid -> [(mid, final_ts)]."""
    config = uniform_groups(2, 3)
    deliveries: Dict[int, List[Tuple[Any, int]]] = {pid: [] for pid in config.all_pids}
    procs = {}
    for pid in config.all_pids:
        proc = PrimCastProcess(pid, config, scheduler, network, CostModel())
        proc.add_deliver_hook(
            lambda p, m, ts: deliveries[p.pid].append((m.mid, ts))
        )
        procs[pid] = proc
    for i in range(6):
        dest = frozenset({0}) if i % 3 == 0 else frozenset({0, 1})
        scheduler.call_after(float(i), procs[0].a_multicast, dest, f"m{i}")
    driver = runtime if runtime is not None else scheduler
    if isinstance(driver, Runtime):
        driver.run(until=1_000_000.0)
    else:
        driver.run(until=1_000_000.0)
    return deliveries


def test_sim_runtime_is_bit_identical_to_hand_wiring():
    # Hand-wired substrate.
    sched_a = Scheduler()
    net_a = Network(sched_a, ConstantLatency(1.0), child_rng(7, "latency"))
    ref = _run_workload(sched_a, net_a)

    # Same substrate built through the runtime adapter.
    runtime = SimRuntime.local(seed=7)
    got = _run_workload(runtime.scheduler, runtime.network, runtime)

    assert got == ref
    assert any(ref[pid] for pid in ref)  # the workload actually delivered


def test_sim_runtime_surface():
    runtime = SimRuntime.local(seed=3)
    assert runtime.backend == "sim"
    assert runtime.now() == 0.0
    fired: List[float] = []
    handle = runtime.call_after(5.0, lambda: fired.append(runtime.now()))
    assert isinstance(handle, TimerHandle)
    runtime.call_after(2.0, lambda: fired.append(runtime.now()))
    runtime.run(until=100.0)
    assert fired == [2.0, 5.0]

    events: List[Tuple[str, Any]] = []
    runtime.add_probe_hook(lambda e, d: events.append((e, d)))
    runtime.probe("ready", 42)
    assert events == [("ready", 42)]


def test_runtime_send_goes_through_transport():
    runtime = SimRuntime.local(seed=3)
    config = uniform_groups(1, 3)
    procs = {
        pid: PrimCastProcess(
            pid, config, runtime.scheduler, runtime.transport, CostModel()
        )
        for pid in config.all_pids
    }
    delivered: List[Any] = []
    for proc in procs.values():
        proc.add_deliver_hook(lambda p, m, ts: delivered.append((p.pid, m.mid)))
    runtime.call_after(1.0, procs[0].a_multicast, frozenset({0}), "x")
    runtime.run(until=1_000_000.0)
    assert sorted(delivered) == [(0, (0, 0)), (1, (0, 0)), (2, (0, 0))]
