"""The shipped source tree must analyse clean — and the analysis must
be able to prove it would notice if it weren't.

This is the wiring of the lint pass into the tier-1 suite: any commit
that introduces a determinism or protocol-contract hazard in
``src/repro`` fails here, with the same findings ``python -m
repro.analysis`` would print. On top of the clean-tree check, this file
pins the allowlist discipline (every exemption justified and still
real) and plants a known RACE202 bug to prove the flow-sensitive rules
actually fire on the real protocol core.
"""

import ast
from pathlib import Path

from repro.analysis import DEFAULT_CONFIG, RULES, AnalysisConfig, analyze_paths
from repro.analysis.engine import analyze_module, load_module

REPO = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO / "src" / "repro"
CONFIG_PY = SRC_REPRO / "analysis" / "config.py"


def test_source_tree_exists():
    assert (SRC_REPRO / "core" / "process.py").is_file()


def test_shipped_tree_is_clean():
    findings = analyze_paths([SRC_REPRO], DEFAULT_CONFIG)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_whole_tree_analyzes_without_crashes():
    """Every module under src/repro must run through every rule without
    an internal error — even with the allowlist off (AnalysisError would
    propagate out of analyze_paths and fail this test)."""
    analyze_paths([SRC_REPRO], AnalysisConfig(allow={}))


def test_all_rules_were_in_play():
    """The clean result must come from running every registered rule,
    not from an accidentally empty registry. 13 = DET001-4, EFF301-302,
    PERF001, PROTO101-103, RACE201-203."""
    assert len(RULES) >= 13


def test_known_violations_exist_without_the_reviewed_allowlist():
    """The built-in allowlist is load-bearing: without it, the reviewed
    exemptions (Envelope's per-payload kind, the standing-proposal-rule
    RACE202 sites in PrimCastProcess) surface as findings. This pins
    that the exemptions are still real code, so stale allowlist entries
    get noticed."""
    findings = analyze_paths([SRC_REPRO], AnalysisConfig(allow={}))
    contexts = {f.context for f in findings}
    assert "repro.rmcast.fifo::Envelope" in contexts
    # Algorithm 1 line 35 / Algorithm 3 lines 75-81 mandate
    # propose-after-ack; the three suppressed send-then-mutate sites
    # must keep existing or the RACE202 allow entries are stale.
    assert "repro.core.process::PrimCastProcess._on_ack" in contexts
    assert "repro.core.process::PrimCastProcess._on_new_state" in contexts
    assert "repro.core.process::PrimCastProcess._check_epoch_activation" in contexts
    # And nothing else: every finding is a reviewed exemption.
    for finding in findings:
        assert DEFAULT_CONFIG.is_allowed(finding.rule, finding.context), (
            finding.format()
        )


def _comment_gaps_ok(source_lines, anchors, region_start):
    """Each anchor line must have at least one comment line between it
    and the previous anchor (or the region start). Returns the anchors
    that lack one."""
    missing = []
    prev_end = region_start
    for start, end, label in anchors:
        gap = source_lines[prev_end : start - 1]
        if not any(line.lstrip().startswith("#") for line in gap):
            missing.append(label)
        prev_end = end
    return missing


def test_every_allowlist_entry_is_justified():
    """Allowlist discipline: each DEFAULT_ALLOW rule entry and each
    SCHEDULER_CONTEXT_API pattern must carry a justification comment
    directly above it in config.py. An exemption nobody can explain is
    an exemption that should not exist."""
    source = CONFIG_PY.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source)

    allow_node = None
    sched_node = None
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            target = node.targets[0] if isinstance(node, ast.Assign) else node.target
            if isinstance(target, ast.Name):
                if target.id == "DEFAULT_ALLOW":
                    allow_node = node
                elif target.id == "SCHEDULER_CONTEXT_API":
                    sched_node = node
    assert allow_node is not None and sched_node is not None

    allow_dict = allow_node.value
    assert isinstance(allow_dict, ast.Dict)
    anchors = [
        (key.lineno, value.end_lineno, f"DEFAULT_ALLOW[{key.value!r}]")
        for key, value in zip(allow_dict.keys, allow_dict.values)
    ]
    missing = _comment_gaps_ok(lines, anchors, allow_dict.lineno)

    sched_tuple = sched_node.value
    assert isinstance(sched_tuple, ast.Tuple)
    anchors = [
        (elt.lineno, elt.end_lineno, f"SCHEDULER_CONTEXT_API[{elt.value!r}]")
        for elt in sched_tuple.elts
    ]
    missing += _comment_gaps_ok(lines, anchors, sched_tuple.lineno)

    assert missing == [], f"allowlist entries without a justification comment: {missing}"


def test_planted_race202_is_caught(tmp_path):
    """Seed a post-send protocol-state mutation into the real
    PrimCastProcess._propose and verify RACE202 fires on it with the
    *default* config — _propose is not an allowlisted context, so the
    suppression of the three reviewed sites cannot mask a fresh bug."""
    source = (SRC_REPRO / "core" / "process.py").read_text(encoding="utf-8")
    send_line = "        self._send_ack(multicast, self.e_cur, self.clock)\n"
    assert source.count(send_line) == 1  # unique to _propose
    planted = source.replace(
        send_line, send_line + "        self.clock += 1\n"
    )
    # Keep the repro/core/ layout so module naming (and therefore the
    # RACE scope and the allowlist contexts) match the real tree.
    target = tmp_path / "repro" / "core" / "process.py"
    target.parent.mkdir(parents=True)
    target.write_text(planted, encoding="utf-8")

    findings = analyze_module(load_module(target), DEFAULT_CONFIG)
    race202 = [f for f in findings if f.rule == "RACE202"]
    assert race202, "planted post-send clock mutation was not detected"
    assert any(
        f.context == "repro.core.process::PrimCastProcess._propose" for f in race202
    ), "\n".join(f.format() for f in race202)
