"""The asyncio adapter: unmodified protocol processes on a real event loop.

The protocol core consumes the substrate exclusively through the
:class:`~repro.net.runtime.SchedulerAPI` / ``TransportAPI`` seam. This
module implements both halves over asyncio:

* :class:`NetScheduler` — time is ``(loop.time() - t0) * 1000`` ms
  (monotonic, per-node); ``call_after`` arms a real ``loop.call_later``
  timer; the seam's allocation-free heap (``_heap`` / ``_seq``) is a
  real heap that :meth:`NetScheduler.drain` runs to empty after every
  external stimulus. With the zero-cost CPU model every entry the
  process pushes is due immediately, so draining preserves the exact
  *relative* order the sim would execute — and because the drain loop
  runs each callback to completion on the single-threaded event loop,
  per-process **handler atomicity** (the RACE202 standing-proposal
  contract, DESIGN.md §10/§12) holds exactly as it does on the
  simulator's event loop.
* :class:`TransportFacade` — ``transmit`` delivers self-addressed
  messages synchronously (the sim's zero-latency self-channel) and
  encodes everything else onto the per-peer TCP connection
  (:mod:`repro.net.transport`); per-channel FIFO comes from TCP.

:class:`NetNode` assembles one protocol process with its facades,
heartbeat oracle, delivery log and workload driver — one node per OS
process under the cluster launcher (:mod:`repro.net.cluster`), or many
nodes on one loop in the in-process differential tests.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from heapq import heappop, heappush
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from collections import Counter

from ..core.config import GroupConfig
from ..core.process import PrimCastProcess
from ..sim.costs import CostModel
from ..sim.rng import child_rng
from .codec import decode_message, encode_hb_frame, encode_msg_frame
from .election import DEFAULT_HB_INTERVAL_MS, DEFAULT_SUSPECT_MS, HeartbeatOmega
from .runtime import Runtime, SchedulerAPI, TransportAPI
from .transport import Transport
from .workload import (
    expected_count,
    make_client_plans,
    make_workload,
    plans_expected_count,
)

#: Node exit codes (the launcher interprets these).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_TIMEOUT = 3


class _LoopTimerHandle:
    """Cancellable handle over ``loop.call_later`` (TimerHandle shape)."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._handle.cancel()


class NetScheduler:
    """SchedulerAPI over an asyncio loop with a monotonic ms clock.

    Processes push service events into ``_heap`` (the seam's fast
    path); :meth:`drain` pops and runs them in ``(time, seq)`` order.
    Under the zero-cost CPU model every pushed entry is due at ``now``,
    so a drain runs the node's whole causal cascade — receive, handle,
    transmit — to quiescence before the event loop regains control,
    which is precisely the sim's run-to-completion discipline.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._t0 = loop.time()
        self._heap: List[Tuple[float, int, Any, Any]] = []
        self._seq = 0
        self._draining = False
        #: Heap entries executed (parity with Scheduler.events_processed).
        self.events_processed = 0
        #: Set by NetNode.kill(): a dead scheduler runs nothing, which
        #: silences the node completely (in-process crash injection).
        self.dead = False

    @property
    def now(self) -> float:
        """Milliseconds since this node's runtime started (monotonic)."""
        return (self._loop.time() - self._t0) * 1000.0

    # -- seam surface ----------------------------------------------------

    def schedule(
        self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> None:
        heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1
        self.kick()

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> _LoopTimerHandle:
        delay = time - self.now
        return self.call_after(delay if delay > 0.0 else 0.0, fn, *args)

    def call_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> _LoopTimerHandle:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        handle = self._loop.call_later(delay / 1000.0, self._fire, fn, args)
        return _LoopTimerHandle(handle)

    # -- execution -------------------------------------------------------

    def _fire(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        if self.dead:
            return
        fn(*args)
        self.drain()

    def kick(self) -> None:
        """Run the heap to quiescence unless a drain is already active
        higher up the stack (re-entrant pushes just extend that drain)."""
        if not self._draining:
            self.drain()

    def drain(self) -> None:
        if self._draining or self.dead:
            return
        self._draining = True
        heap = self._heap
        try:
            while heap:
                entry = heap[0]
                due = entry[0] - self.now
                if due > 0.5:
                    # Genuinely future work (a non-zero cost model):
                    # hand it to the loop instead of busy-waiting.
                    self._loop.call_later(due / 1000.0, self.kick)
                    break
                heappop(heap)
                self.events_processed += 1
                entry[2](*entry[3])
        finally:
            self._draining = False


class TransportFacade:
    """TransportAPI over the per-peer connection manager.

    Self-addressed messages are delivered synchronously (the sim's
    zero-latency self-channel); remote messages are encoded once per
    destination and queued on that peer's TCP connection.
    """

    def __init__(self, scheduler: NetScheduler, binary: bool = False) -> None:
        self._scheduler = scheduler
        self._transport: Optional[Transport] = None
        self.processes: Dict[int, Any] = {}
        #: Encode wire messages in the binary fast-path format instead
        #: of canonical JSON (the receiver auto-detects per frame).
        self.binary = binary
        #: Wire messages by kind (mirrors Network.counts_by_kind).
        self.counts_by_kind: Counter[str] = Counter()
        self.messages_sent = 0

    def bind(self, transport: Transport) -> None:
        self._transport = transport

    def register(self, proc: Any) -> None:
        if proc.pid in self.processes:
            raise ValueError(f"duplicate pid {proc.pid}")
        self.processes[proc.pid] = proc

    def transmit(self, src: int, dst: int, msg: Any, depart_time: float) -> None:
        self.messages_sent += 1
        kind = getattr(msg, "kind", msg.__class__.__name__)
        self.counts_by_kind[kind] += 1
        local = self.processes.get(dst)
        if local is not None:
            local.enqueue_message(src, msg)
            self._scheduler.kick()
            return
        if self._transport is None:
            raise RuntimeError("transport not bound yet (node still starting)")
        self._transport.send_frame_bytes(
            dst, encode_msg_frame(src, msg, binary=self.binary)
        )


class AsyncioRuntime(Runtime):
    """The net backend's Runtime: facade pair over one asyncio loop."""

    backend = "net"

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        binary: bool = False,
    ) -> None:
        super().__init__()
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._scheduler = NetScheduler(self._loop)
        self._transport_facade = TransportFacade(self._scheduler, binary=binary)

    @property
    def scheduler(self) -> SchedulerAPI:
        sched: SchedulerAPI = self._scheduler
        return sched

    @property
    def transport(self) -> TransportAPI:
        facade: TransportAPI = self._transport_facade
        return facade

    @property
    def net_scheduler(self) -> NetScheduler:
        return self._scheduler

    @property
    def transport_facade(self) -> TransportFacade:
        return self._transport_facade

    def run(self, until: float) -> float:
        """Pump the loop until runtime time reaches ``until`` ms. Only
        usable from outside the loop (driver-style code); nodes under a
        running loop are driven by their own coroutines instead."""
        if self._loop.is_running():
            raise RuntimeError("run() cannot be called from inside the event loop")
        remaining = (until - self._scheduler.now) / 1000.0
        if remaining > 0:
            self._loop.run_until_complete(asyncio.sleep(remaining))
        return self._scheduler.now


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------


@dataclass
class Topology:
    """A cluster description, JSON-serializable for the launcher."""

    groups: List[List[int]]
    addresses: Dict[int, Tuple[str, int]]
    seed: int = 1
    n_messages: int = 16
    driver_pid: int = 0
    extra_group_p: float = 0.5
    hb_interval_ms: float = DEFAULT_HB_INTERVAL_MS
    suspect_ms: float = DEFAULT_SUSPECT_MS
    #: Startup grace before a silent peer may be suspected (None: the
    #: oracle defaults it to ``suspect_ms``).
    hb_grace_ms: Optional[float] = None
    run_timeout_s: float = 60.0
    linger_ms: float = 250.0
    #: Fault-injection sync point: the driver pauses its submission
    #: chain after delivering this many of its own messages and resumes
    #: only once a ``RELEASE`` file appears in the rundir (the
    #: coordinator writes it right after performing the kill). ``None``
    #: means never pause.
    hold_after: Optional[int] = None
    #: Wire encoding: ``"json"`` (canonical, PR-9 format) or
    #: ``"binary"`` (struct-packed fast path). Received frames are
    #: auto-detected, so mixed-codec clusters interoperate.
    codec: str = "json"
    #: Stage outgoing frames per peer and write once per event-loop
    #: drain (transport.py); off = one write per frame.
    coalesce: bool = True
    #: rmcast ack/bump batching window (§7.1) in ms; 0 disables.
    batching_ms: float = 0.0
    #: Workload driver: ``"seq"`` (one driver node, one outstanding,
    #: exact differential) or ``"open"`` (concurrent clients on every
    #: node, statistical verification).
    driver_mode: str = "seq"
    #: Open-loop client count (spread round-robin over the nodes).
    clients: int = 4
    #: Per-client outstanding-message window.
    window: int = 4
    #: Per-client Poisson arrival rate (msgs/sec); 0 = closed loop
    #: (clients keep their window full).
    rate_hz: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "groups": [list(g) for g in self.groups],
            "addresses": {str(pid): [h, p] for pid, (h, p) in self.addresses.items()},
            "seed": self.seed,
            "n_messages": self.n_messages,
            "driver_pid": self.driver_pid,
            "extra_group_p": self.extra_group_p,
            "hb_interval_ms": self.hb_interval_ms,
            "suspect_ms": self.suspect_ms,
            "hb_grace_ms": self.hb_grace_ms,
            "run_timeout_s": self.run_timeout_s,
            "linger_ms": self.linger_ms,
            "hold_after": self.hold_after,
            "codec": self.codec,
            "coalesce": self.coalesce,
            "batching_ms": self.batching_ms,
            "driver_mode": self.driver_mode,
            "clients": self.clients,
            "window": self.window,
            "rate_hz": self.rate_hz,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Topology":
        # .get() with the field defaults keeps PR-9 topology files valid.
        return cls(
            groups=[list(g) for g in data["groups"]],
            addresses={
                int(pid): (hp[0], int(hp[1]))
                for pid, hp in data["addresses"].items()
            },
            seed=data["seed"],
            n_messages=data["n_messages"],
            driver_pid=data["driver_pid"],
            extra_group_p=data["extra_group_p"],
            hb_interval_ms=data["hb_interval_ms"],
            suspect_ms=data["suspect_ms"],
            hb_grace_ms=data.get("hb_grace_ms"),
            run_timeout_s=data["run_timeout_s"],
            linger_ms=data["linger_ms"],
            hold_after=data.get("hold_after"),
            codec=data.get("codec", "json"),
            coalesce=data.get("coalesce", True),
            batching_ms=data.get("batching_ms", 0.0),
            driver_mode=data.get("driver_mode", "seq"),
            clients=data.get("clients", 4),
            window=data.get("window", 4),
            rate_hz=data.get("rate_hz", 0.0),
        )

    def make_config(self) -> GroupConfig:
        return GroupConfig(self.groups)

    def workload(self) -> List[FrozenSet[int]]:
        return make_workload(
            len(self.groups), self.n_messages, self.seed, self.extra_group_p
        )

    def client_plans(self) -> List[List[FrozenSet[int]]]:
        # Client cid runs on pids[cid % n] (see _start_clients); its
        # home group is pinned into every destination set so the
        # submitter observes its own deliveries — the window-freeing
        # signal of the open-loop driver.
        config = self.make_config()
        pids = sorted(config.group_of)
        home_gids = [
            config.group_of[pids[cid % len(pids)]] for cid in range(self.clients)
        ]
        return make_client_plans(
            len(self.groups),
            self.n_messages,
            self.clients,
            self.seed,
            self.extra_group_p,
            home_gids=home_gids,
        )

    def expected_for(self, gid: int) -> int:
        """Messages a member of ``gid`` must deliver under this
        topology's driver mode (a pure function of the config)."""
        if self.driver_mode == "open":
            return plans_expected_count(self.client_plans(), gid)
        return expected_count(self.workload(), gid)


# ----------------------------------------------------------------------
# node
# ----------------------------------------------------------------------


@dataclass
class NodeResult:
    """What one node reports at exit (also written to summary JSON)."""

    pid: int
    gid: int
    exit_code: int
    delivered: List[Tuple[Tuple[int, int], int]] = field(default_factory=list)
    expected: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    wall_ms: float = 0.0
    transport: Dict[str, Any] = field(default_factory=dict)
    epochs_seen: int = 0


class _OpenClient:
    """One open-loop client's live state (hosted on one node)."""

    __slots__ = ("cid", "plan", "next", "outstanding", "backlog", "rng")

    def __init__(self, cid: int, plan: List[FrozenSet[int]], rng: Any) -> None:
        self.cid = cid
        self.plan = plan
        self.next = 0  # next plan index to submit
        self.outstanding = 0  # submitted, not yet self-delivered
        self.backlog = 0  # arrived (Poisson) but window-blocked
        self.rng = rng


class NetNode:
    """One protocol process on one event loop, with its substrate.

    Lifecycle (files under ``rundir`` are the coordination protocol the
    launcher shares — it works identically across OS processes and for
    many nodes on one loop):

    1. bind server, write ``ready-<pid>``;
    2. wait for ``GO``, dial all peers, start heartbeats;
    3. run the seeded workload — either the sequential driver (one
       driver node, one outstanding, gated on its own delivery) or the
       open-loop driver (``driver_mode="open"``: this node's share of
       the concurrent clients, each with an outstanding window and
       Poisson arrivals);
    4. on delivering everything addressed to this group, write
       ``done-<pid>`` and keep serving (acks + heartbeats for
       stragglers);
    5. on ``STOP``, flush queues, linger ``linger_ms``, close, write
       ``summary-<pid>.json`` and exit 0 (3 on watchdog timeout).

    Every submission is appended to ``submit-<pid>.jsonl`` (mid +
    destination set + time): under the open-loop driver the
    interleaving of mids is timing-dependent, so the statistical
    verifier reconstructs the ground-truth message set from these logs
    instead of deriving it from the seed.
    """

    def __init__(self, topology: Topology, pid: int, rundir: Path) -> None:
        self.topology = topology
        self.pid = pid
        self.rundir = Path(rundir)
        self.config = topology.make_config()
        self.gid = self.config.group_of[pid]
        self.open_mode = topology.driver_mode == "open"
        self.workload = [] if self.open_mode else topology.workload()
        self.expected = topology.expected_for(self.gid)
        self.is_driver = pid == topology.driver_pid and not self.open_mode
        self.runtime: Optional[AsyncioRuntime] = None
        self.proc: Optional[PrimCastProcess] = None
        self.omega: Optional[HeartbeatOmega] = None
        self._transport: Optional[Transport] = None
        self._delivered = 0
        self._next_submit = 0
        self._submitted = 0
        self._first_submit_ms: Optional[float] = None
        self._last_deliver_ms: Optional[float] = None
        self._submit_times: Dict[int, float] = {}
        self._clients: List[_OpenClient] = []
        #: open mode: mid -> (client, submit time) for window release.
        self._inflight: Dict[Tuple[int, int], Tuple[_OpenClient, float]] = {}
        self._latencies: List[float] = []
        self._epochs_seen = 0
        self._hold_task: Optional["asyncio.Task[None]"] = None
        self._done = asyncio.Event()
        self._log_fh: Optional[Any] = None
        self._submit_fh: Optional[Any] = None

    # -- lifecycle -------------------------------------------------------

    async def run(self) -> NodeResult:
        try:
            return await asyncio.wait_for(
                self._run(), timeout=self.topology.run_timeout_s
            )
        except asyncio.TimeoutError:
            return self._result(EXIT_TIMEOUT)
        finally:
            for fh_attr in ("_log_fh", "_submit_fh"):
                fh = getattr(self, fh_attr)
                if fh is not None:
                    fh.close()
                    setattr(self, fh_attr, None)

    async def _run(self) -> NodeResult:
        topo = self.topology
        runtime = self.runtime = AsyncioRuntime(binary=topo.codec == "binary")
        sched = runtime.net_scheduler
        facade = runtime.transport_facade
        proc = self.proc = PrimCastProcess(
            self.pid,
            self.config,
            sched,
            facade,
            CostModel(),  # zero-cost CPU: every handler is due immediately
            batching_ms=topo.batching_ms,  # §7.1 ack/bump coalescing
        )
        transport = self._transport = Transport(
            self.pid,
            topo.addresses,
            on_frame=self._on_frame,
            probe=runtime.probe,
            coalesce=topo.coalesce,
        )
        facade.bind(transport)
        self._log_fh = open(self.rundir / f"delivery-{self.pid}.jsonl", "w")
        self._submit_fh = open(self.rundir / f"submit-{self.pid}.jsonl", "w")
        proc.add_deliver_hook(self._on_deliver)
        proc.add_probe_hook(self._on_probe)

        await transport.start()
        (self.rundir / f"ready-{self.pid}").write_text("ready\n")
        await self._wait_for_file(self.rundir / "GO")
        await transport.connect_all()
        members = self.config.members(self.gid)
        omega = self.omega = HeartbeatOmega(
            self.gid,
            members,
            self.pid,
            sched,
            self._send_heartbeats,
            hb_interval_ms=topo.hb_interval_ms,
            suspect_ms=topo.suspect_ms,
            grace_ms=topo.hb_grace_ms,
        )
        proc.omega = omega
        omega.subscribe(proc._on_omega_output)
        omega.start()

        if self.open_mode:
            self._start_clients()
        elif self.is_driver:
            proc.post_job(self._submit_next)
        if self.expected == 0:
            self._done.set()
        await self._done.wait()
        (self.rundir / f"done-{self.pid}").write_text("done\n")
        await self._wait_for_file(self.rundir / "STOP")
        omega.stop()
        await transport.flush()
        await asyncio.sleep(self.topology.linger_ms / 1000.0)
        await transport.close()
        result = self._result(EXIT_OK)
        self._write_summary(result)
        return result

    async def _wait_for_file(self, path: Path, poll_s: float = 0.02) -> None:
        while not path.exists():
            await asyncio.sleep(poll_s)

    # -- frame handling (event-loop context) -----------------------------

    def _on_frame(self, src: int, frame: Dict[str, Any]) -> None:
        t = frame.get("t")
        if t == "m":
            assert self.proc is not None and self.runtime is not None
            # Binary frames arrive with the message already decoded by
            # the FrameDecoder ("msg"); JSON frames carry the tagged
            # dict form ("m").
            msg = frame.get("msg")
            if msg is None:
                msg = decode_message(frame["m"])
            if self.omega is not None:
                self.omega.heard_from(src)
            self.proc.enqueue_message(int(frame.get("src", src)), msg)
            self.runtime.net_scheduler.kick()
        elif t == "hb":
            if self.omega is not None:
                self.omega.heard_from(int(frame["pid"]))

    def _send_heartbeats(self) -> None:
        transport = self._transport
        if transport is None:
            return
        data = encode_hb_frame(self.pid, binary=self.topology.codec == "binary")
        for pid in self.config.members(self.gid):
            if pid != self.pid and pid in transport.peers:
                transport.send_frame_bytes(pid, data)

    # -- workload (shared) -----------------------------------------------

    def _log_submit(self, mid: Tuple[int, int], dests: FrozenSet[int], now: float) -> None:
        self._submitted += 1
        if self._first_submit_ms is None:
            self._first_submit_ms = now
        if self._submit_fh is not None:
            # Hand-formatted JSON line (hot path: one line per
            # submission, flushed for crash robustness) — every field
            # is an int or a round()ed float, so this is valid JSON.
            dest = ", ".join(map(str, sorted(dests)))
            self._submit_fh.write(
                f'{{"mid": [{mid[0]}, {mid[1]}], "dest": [{dest}], '
                f'"t": {round(now, 3)}}}\n'
            )
            self._submit_fh.flush()

    # -- workload (sequential driver) ------------------------------------

    def _submit_next(self) -> None:
        i = self._next_submit
        if i >= len(self.workload):
            return
        self._next_submit += 1
        assert self.proc is not None and self.runtime is not None
        now = self.runtime.net_scheduler.now
        self._submit_times[i] = now
        mc = self.proc.a_multicast(self.workload[i], payload={"i": i})
        self._log_submit(mc.mid, self.workload[i], now)

    # -- workload (open-loop driver) -------------------------------------

    def _start_clients(self) -> None:
        """Create this node's share of the clients and start arrivals.

        Client ``c`` lives on node ``pids[c % n]``; its destination
        plan comes from the seeded plans (every node derives the same
        assignment). With ``rate_hz`` set, arrivals follow a per-client
        Poisson process; with 0 the client runs closed-loop, keeping
        its window full from the start.
        """
        topo = self.topology
        pids = sorted(self.config.group_of)
        plans = topo.client_plans()
        assert self.runtime is not None
        sched = self.runtime.net_scheduler
        for cid, plan in enumerate(plans):
            if pids[cid % len(pids)] != self.pid or not plan:
                continue
            client = _OpenClient(
                cid, plan, child_rng(topo.seed, f"net-arrival-{cid}")
            )
            self._clients.append(client)
            if topo.rate_hz > 0:
                gap_ms = client.rng.expovariate(topo.rate_hz) * 1000.0
                sched.call_after(gap_ms, self._client_arrival, client)
            else:
                client.backlog = len(plan)
                self._schedule_pump(client)

    def _client_arrival(self, client: _OpenClient) -> None:
        client.backlog += 1
        # next + backlog = arrivals so far; the rest of the plan still
        # needs an arrival scheduled.
        if len(client.plan) - (client.next + client.backlog) > 0:
            assert self.runtime is not None
            gap_ms = client.rng.expovariate(self.topology.rate_hz) * 1000.0
            self.runtime.net_scheduler.call_after(
                gap_ms, self._client_arrival, client
            )
        self._schedule_pump(client)

    def _schedule_pump(self, client: _OpenClient, delay: float = 0.0) -> None:
        """Queue a pump as its own job on the process CPU queue.

        Submissions must never run re-entrantly inside another handler
        (a deliver hook, a timer callback) — same handler-atomicity
        discipline the sequential driver keeps via ``post_job``.
        """
        assert self.proc is not None
        self.proc.post_job(lambda: self._pump_client(client), delay)

    def _pump_client(self, client: _OpenClient) -> None:
        """Submit backlog while the window (and the transport) allow."""
        assert self.proc is not None and self.runtime is not None
        sched = self.runtime.net_scheduler
        transport = self._transport
        while client.backlog > 0 and client.outstanding < self.topology.window:
            if transport is not None and transport.overloaded():
                # Backpressure: retry once the send queues drain a bit.
                self._schedule_pump(client, 5.0)
                return
            dests = client.plan[client.next]
            mc = self.proc.a_multicast(
                dests, payload={"c": client.cid, "i": client.next}
            )
            now = sched.now
            self._inflight[mc.mid] = (client, now)
            self._log_submit(mc.mid, dests, now)
            client.next += 1
            client.backlog -= 1
            client.outstanding += 1

    def _on_deliver(self, proc: Any, multicast: Any, final_ts: int) -> None:
        mid = multicast.mid
        if self.runtime is not None:
            self._last_deliver_ms = self.runtime.net_scheduler.now
        if self._log_fh is not None:
            assert self.runtime is not None
            # Hand-formatted JSON line (hot path: one line per local
            # delivery, flushed for crash robustness).
            self._log_fh.write(
                f'{{"mid": [{mid[0]}, {mid[1]}], "final": {final_ts}, '
                f'"t": {round(self.runtime.net_scheduler.now, 3)}}}\n'
            )
            self._log_fh.flush()
        self._delivered += 1
        if self.open_mode and mid[0] == self.pid:
            entry = self._inflight.pop(mid, None)
            if entry is not None:
                client, submitted = entry
                assert self.runtime is not None
                self._latencies.append(self.runtime.net_scheduler.now - submitted)
                client.outstanding -= 1
                self._schedule_pump(client)
        if self.is_driver and mid[0] == self.pid:
            submitted = self._submit_times.pop(mid[1], None)
            if submitted is not None:
                assert self.runtime is not None
                self._latencies.append(self.runtime.net_scheduler.now - submitted)
            if mid[1] + 1 == self._next_submit:
                if (
                    self.topology.hold_after is not None
                    and mid[1] + 1 == self.topology.hold_after
                ):
                    # Fault-injection sync point: pause the submission
                    # chain until the coordinator has performed the kill
                    # and written RELEASE — without this, a fast workload
                    # can finish before the coordinator's file poll
                    # notices it reached the kill mark.
                    self._hold_task = asyncio.get_running_loop().create_task(
                        self._hold_for_release()
                    )
                else:
                    # Sequential, one outstanding: our own delivery of
                    # message i releases message i+1.
                    proc.post_job(self._submit_next)
        if self._delivered >= self.expected:
            self._done.set()

    async def _hold_for_release(self) -> None:
        await self._wait_for_file(self.rundir / "RELEASE")
        assert self.proc is not None and self.runtime is not None
        self.proc.post_job(self._submit_next)
        self.runtime.net_scheduler.kick()

    def _on_probe(self, proc: Any, event: str, data: Any) -> None:
        if event == "epoch_change":
            self._epochs_seen += 1

    # -- crash injection (in-process clusters) ---------------------------

    async def kill(self) -> None:
        """Silence this node completely: the in-process stand-in for
        SIGKILL. The scheduler is marked dead (no callback ever runs
        again), the oracle stops, and all sockets close."""
        if self.omega is not None:
            self.omega.stop()
        if self.runtime is not None:
            self.runtime.net_scheduler.dead = True
        if self._transport is not None:
            await self._transport.close()
        for fh_attr in ("_log_fh", "_submit_fh"):
            fh = getattr(self, fh_attr)
            if fh is not None:
                fh.close()
                setattr(self, fh_attr, None)

    # -- reporting -------------------------------------------------------

    def _result(self, exit_code: int) -> NodeResult:
        transport_stats = self._transport.stats() if self._transport else {}
        delivered = []
        if self.proc is not None:
            delivered = [(mid, final) for mid, final, _ in self.proc.delivery_log]
        return NodeResult(
            pid=self.pid,
            gid=self.gid,
            exit_code=exit_code,
            delivered=delivered,
            expected=self.expected,
            latencies_ms=[round(l, 3) for l in self._latencies],
            wall_ms=self.runtime.net_scheduler.now if self.runtime else 0.0,
            transport=transport_stats,
            epochs_seen=self._epochs_seen,
        )

    def _write_summary(self, result: NodeResult) -> None:
        workload_ms = 0.0
        if self._first_submit_ms is not None and self._last_deliver_ms is not None:
            workload_ms = self._last_deliver_ms - self._first_submit_ms
        payload = {
            "pid": result.pid,
            "gid": result.gid,
            "exit_code": result.exit_code,
            "delivered": [[list(mid), final] for mid, final in result.delivered],
            "expected": result.expected,
            "latencies_ms": result.latencies_ms,
            "wall_ms": round(result.wall_ms, 3),
            #: first submission to last local delivery (driver node only)
            "workload_ms": round(workload_ms, 3),
            "submitted": self._submitted,
            "first_submit_ms": (
                round(self._first_submit_ms, 3)
                if self._first_submit_ms is not None
                else None
            ),
            "last_deliver_ms": (
                round(self._last_deliver_ms, 3)
                if self._last_deliver_ms is not None
                else None
            ),
            "codec": self.topology.codec,
            "driver_mode": self.topology.driver_mode,
            "transport": result.transport,
            "message_counts": (
                dict(self.runtime.transport_facade.counts_by_kind)
                if self.runtime is not None
                else {}
            ),
            "events": (
                self.runtime.net_scheduler.events_processed
                if self.runtime is not None
                else 0
            ),
            "epochs_seen": result.epochs_seen,
            "backend": "net",
        }
        (self.rundir / f"summary-{self.pid}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def run_node(topology: Topology, pid: int, rundir: Path) -> int:
    """Blocking entry point for one node OS process."""
    node = NetNode(topology, pid, Path(rundir))
    result = asyncio.run(node.run())
    return result.exit_code
