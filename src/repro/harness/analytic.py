"""Analytic latency and message-complexity model (the paper's Table 1).

The collision-free / failure-free step counts follow §3.2's method from
each protocol's clock-update latency C and commit latency D:
collision-free = D, failure-free = C + D.

Message complexity counts the wire messages one a-multicast to k groups
of n generates. Note the paper's formulas approximate "followers" as n
per group (they include the leader again); the exact counts our tracer
measures use n-1 followers, so measured totals sit slightly below the
formulas. Both are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class LatencyProfile:
    """Step counts and their C/D decomposition for one protocol."""

    protocol: str
    clock_update_latency: int  # C
    commit_latency: int  # D

    @property
    def collision_free(self) -> int:
        return self.commit_latency

    @property
    def failure_free(self) -> int:
        return self.clock_update_latency + self.commit_latency


#: §4.1, §4.2, §5.1: C and D per protocol. "whitebox-leaders" is the
#: delivery-at-primaries row (one step less).
LATENCY_PROFILES: Dict[str, LatencyProfile] = {
    "fastcast": LatencyProfile("fastcast", 4, 4),
    "whitebox": LatencyProfile("whitebox", 2, 4),
    "whitebox-leaders": LatencyProfile("whitebox-leaders", 2, 3),
    "primcast": LatencyProfile("primcast", 2, 3),
    "primcast-hc": LatencyProfile("primcast-hc", 2, 3),
}


def message_complexity(protocol: str, k: int, n: int) -> Dict[str, int]:
    """Paper-formula message counts per a-multicast to k groups of n.

    Returns a breakdown by phase plus ``total`` (Table 1, last column).
    """
    if k < 1 or n < 1:
        raise ValueError("need k >= 1 groups of n >= 1 processes")
    if protocol == "fastcast":
        parts = {
            "start": k * n,
            "snd-soft + snd-hard": 2 * k * k * n,
            "2x paxos 2a": 2 * k * n,
            "2x paxos 2b": 2 * k * n * n,
        }
    elif protocol in ("whitebox", "whitebox-leaders"):
        parts = {
            "start": k,
            "leaders accept": k * k * n,
            "followers ack": k * k * n,
            "deliver": k * n,
        }
    elif protocol in ("primcast", "primcast-hc"):
        parts = {
            "start": k * n,
            "leaders ack": k * k * n,
            "followers ack": k * k * n * n,
            "bump*": k * n * n,
        }
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    parts["total"] = sum(parts.values())
    return parts


def exact_message_count(protocol: str, k: int, n: int) -> Dict[str, int]:
    """Exact per-multicast counts for this repo's implementations
    (followers = n - 1; bump upper bound), to compare with the tracer."""
    if protocol == "fastcast":
        parts = {
            "start": k * n,
            "fc-soft": k * k * n,
            "fc-hard": k * k * n,
            "fc-2a": 2 * k * n,
            "fc-2b": 2 * k * n * n,
        }
    elif protocol in ("whitebox", "whitebox-leaders"):
        parts = {
            "start": k,
            "wb-accept": k * k * n,
            "wb-ack": k * k * n,
            "wb-deliver": k * (n - 1),
        }
    elif protocol in ("primcast", "primcast-hc"):
        parts = {
            "start": k * n,
            "ack": (k * n) * (k * n),  # every dest process acks to all
            "bump(max)": k * n * n,  # not always required
        }
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    parts["total"] = sum(parts.values())
    return parts


def hybrid_clock_failure_free_ms(delta_ms: float, epsilon_ms: float) -> float:
    """§6: failure-free latency min(5Δ, 4Δ + 2ε) under the HC rule."""
    if delta_ms < 0 or epsilon_ms < 0:
        raise ValueError("delta and epsilon must be non-negative")
    return min(5 * delta_ms, 4 * delta_ms + 2 * epsilon_ms)


#: Symbolic message-complexity column of Table 1.
COMPLEXITY_FORMULAS = {
    "fastcast": "k(2kn + 3n + 2n^2)",
    "whitebox": "k(1 + 2kn + n)",
    "primcast": "k(kn + kn^2 + n + n^2)",
}


def table1_rows() -> List[List[str]]:
    """Table 1, reconstructed from the analytic model."""
    rows = []
    for name, label in (
        ("fastcast", "FastCast"),
        ("whitebox", "White-Box"),
        ("primcast", "PrimCast"),
    ):
        profile = LATENCY_PROFILES[name]
        collision = str(profile.collision_free)
        failure = str(profile.failure_free)
        if name == "whitebox":
            leaders = LATENCY_PROFILES["whitebox-leaders"]
            collision = f"{leaders.collision_free} (at leaders) / {collision}"
            failure = f"{leaders.failure_free} (at leaders) / {failure}"
        rows.append([label, collision, failure, COMPLEXITY_FORMULAS[name]])
    return rows
