"""Seeded workloads shared by the sim and net backends.

The differential harness needs both backends to run the *same* message
sequence: destination sets are a pure function of ``(n_groups,
n_messages, seed, extra_group_p)``, derived through the repo's seeded
RNG tree so the net backend cannot drift from the sim reference.

The shape is chosen so the per-group delivery order is *determined* by
the protocol, independent of wall-clock timing (DESIGN.md §12):

* the driver's group (group 0) is in every destination set, and
* the driver submits sequentially with one outstanding message, gated
  on its own delivery.

Message ``i+1`` is only proposed after the driver delivered message
``i``, so ``final(i+1) >= ts_{group 0}(i+1) > final(i)`` — final
timestamps strictly increase in submission order, even across epoch
changes. Each group therefore delivers exactly the submission-order
subsequence addressed to it, on every backend, every run.

The **open-loop** workload (:func:`make_client_plans`) drops both
props: K concurrent clients, spread round-robin over the nodes, each
submit up to ``window`` outstanding messages with Poisson arrivals.
Interleaving is then timing-dependent, so the statistical per-group
order/agreement checks (:mod:`repro.verify`) replace the exact
differential. The *destination sets* stay a pure function of the seed —
every node can compute exactly how many messages its group will
deliver, which is what the shutdown barrier needs.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..sim.rng import child_rng


def make_workload(
    n_groups: int,
    n_messages: int,
    seed: int,
    extra_group_p: float = 0.5,
) -> List[FrozenSet[int]]:
    """Destination set for each message, driver's group always included."""
    if n_groups < 1:
        raise ValueError("need at least one group")
    rng = child_rng(seed, "net-workload")
    dests: List[FrozenSet[int]] = []
    for _ in range(n_messages):
        d = {0}
        for g in range(1, n_groups):
            if rng.random() < extra_group_p:
                d.add(g)
        dests.append(frozenset(d))
    return dests


def expected_count(workload: List[FrozenSet[int]], gid: int) -> int:
    """How many workload messages a member of ``gid`` must deliver."""
    return sum(1 for dests in workload if gid in dests)


def make_client_plans(
    n_groups: int,
    n_messages: int,
    n_clients: int,
    seed: int,
    extra_group_p: float = 0.5,
    home_gids: Optional[List[int]] = None,
) -> List[List[FrozenSet[int]]]:
    """Per-client destination plans for the open-loop driver.

    ``n_messages`` total messages are dealt round-robin over
    ``n_clients`` clients. Each destination set pins the submitting
    client's *home* group (``home_gids[cid]``, the group of the node
    the client runs on) plus every other group with probability
    ``extra_group_p``. The pin is load-bearing, not cosmetic: a
    PrimCast submitter only a-delivers messages addressed to its own
    group, and the windowed driver frees a window slot exactly when the
    submitter observes its own delivery. A message that skipped the
    home group would occupy its slot forever and wedge the client.
    Unlike the sequential workload's globally pinned group 0, clients
    are spread round-robin over *all* nodes, so every group hosts
    submitters and no group is special cluster-wide.

    Without ``home_gids`` the home group is drawn uniformly instead
    (standalone use; the cluster driver always passes the real
    mapping). A pure function of the arguments: every node derives the
    same plans and can count its group's expected deliveries without
    any runtime coordination.
    """
    if n_groups < 1:
        raise ValueError("need at least one group")
    if n_clients < 1:
        raise ValueError("need at least one client")
    if home_gids is not None and len(home_gids) != n_clients:
        raise ValueError("home_gids must have one entry per client")
    rng = child_rng(seed, "net-open-workload")
    plans: List[List[FrozenSet[int]]] = [[] for _ in range(n_clients)]
    for i in range(n_messages):
        cid = i % n_clients
        if home_gids is not None:
            home = home_gids[cid]
        else:
            home = rng.randrange(n_groups)
        d = {home}
        for g in range(n_groups):
            if g != home and rng.random() < extra_group_p:
                d.add(g)
        plans[cid].append(frozenset(d))
    return plans


def plans_expected_count(plans: List[List[FrozenSet[int]]], gid: int) -> int:
    """How many open-loop messages a member of ``gid`` must deliver."""
    return sum(1 for plan in plans for dests in plan if gid in dests)
