"""A partitioned, replicated key-value store over atomic multicast.

The application class the paper's introduction motivates: state sharded
across replica groups, atomic multicast as the ordering layer for both
single-partition commands and cross-partition transactions — the role
ad-hoc timestamping schemes play in Spanner/Granola ([12, 13] in the
paper) and atomic multicast plays in [18, 39].

Design:

* one **partition** per replica group; keys are sharded by hash;
* commands are a-multicast to the partitions they touch: GET/PUT/DELETE
  are *local* messages, multi-key transactions are *global*;
* every replica of a destination partition applies the command at
  a-delivery, in delivery order — atomic multicast's partial order makes
  the partition replicas identical and cross-partition transactions
  atomic (every involved partition orders them the same way relative to
  all other commands);
* results are produced at the replica the client is attached to, when
  that replica delivers the command.

Transactions are deterministic multi-key read-modify-writes (set /
increment); conditions are evaluated against the partition-local state
at apply time, which is consistent everywhere because delivery order is.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..core.messages import MessageId, Multicast
from ..net.runtime import Runtime

ResultCallback = Callable[[Any], None]


def partition_of(key: str, n_partitions: int) -> int:
    """Stable key → partition mapping (sharding)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % n_partitions


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------


class Command:
    """Base class; subclasses define which keys they touch."""

    def keys(self) -> List[str]:
        raise NotImplementedError

    def partitions(self, n_partitions: int) -> FrozenSet[int]:
        return frozenset(partition_of(k, n_partitions) for k in self.keys())


class Put(Command):
    """Set ``key`` to ``value``; returns the previous value."""

    __slots__ = ("key", "value")

    def __init__(self, key: str, value: Any):
        self.key = key
        self.value = value

    def keys(self) -> List[str]:
        return [self.key]


class Get(Command):
    """Linearizable read of ``key`` (ordered like any other command)."""

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def keys(self) -> List[str]:
        return [self.key]


class Delete(Command):
    """Remove ``key``; returns whether it existed."""

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def keys(self) -> List[str]:
        return [self.key]


class Increment(Command):
    """Add ``amount`` to an integer key (missing = 0)."""

    __slots__ = ("key", "amount")

    def __init__(self, key: str, amount: int = 1):
        self.key = key
        self.amount = amount

    def keys(self) -> List[str]:
        return [self.key]


class Transaction(Command):
    """A deterministic multi-key write batch, atomic across partitions.

    ``ops`` is a list of ("set", key, value) / ("incr", key, amount)
    tuples. Every involved partition applies its slice of the ops at the
    transaction's single position in the global partial order.
    """

    __slots__ = ("ops",)

    def __init__(self, ops: List[Tuple]):
        if not ops:
            raise ValueError("transaction needs at least one operation")
        for op in ops:
            if op[0] not in ("set", "incr"):
                raise ValueError(f"unknown transaction op {op[0]!r}")
        self.ops = list(ops)

    def keys(self) -> List[str]:
        return [op[1] for op in self.ops]


# ----------------------------------------------------------------------
# replica-side state machine
# ----------------------------------------------------------------------


class KvReplica:
    """Applies delivered commands to one partition's state.

    Attach to any protocol process exposing the common endpoint surface
    (``a_multicast`` / ``add_deliver_hook`` / ``gid``) — PrimCast or any
    baseline, on any backend. When a :class:`~repro.net.runtime.Runtime`
    is provided, the replica reads time through it (simulated ms or real
    wall ms, whichever the backend speaks) to measure per-command
    submit→apply latency.
    """

    def __init__(
        self, process: Any, n_partitions: int, runtime: Optional[Runtime] = None
    ):
        self.process = process
        self.partition = process.gid
        self.n_partitions = n_partitions
        self.runtime = runtime
        self.state: Dict[str, Any] = {}
        self.applied_log: List[MessageId] = []
        #: submit→apply latency (ms in the runtime's clock) for commands
        #: submitted at this replica; only populated with a runtime.
        self.latencies_ms: List[float] = []
        self._submit_times: Dict[MessageId, float] = {}
        self._callbacks: Dict[MessageId, ResultCallback] = {}
        process.add_deliver_hook(self._on_deliver)

    # -- client side -----------------------------------------------------

    def submit(self, command: Command, on_done: Optional[ResultCallback] = None) -> Multicast:
        """a-multicast ``command`` to the partitions it touches.

        ``on_done(result)`` fires when *this* replica delivers and
        applies the command; this replica's partition must be one of the
        command's destinations (clients talk to a replica of a partition
        they touch, as in the paper's workload).
        """
        dests = command.partitions(self.n_partitions)
        if self.partition not in dests:
            raise ValueError(
                f"command touches partitions {sorted(dests)} but this "
                f"replica serves partition {self.partition}; route the "
                f"command to a replica of one of its partitions"
            )
        multicast = self.process.a_multicast(dests, payload=command)
        if self.runtime is not None:
            self._submit_times[multicast.mid] = self.runtime.now()
        if on_done is not None:
            self._callbacks[multicast.mid] = on_done
        return multicast

    # -- replica side ----------------------------------------------------

    def _on_deliver(self, proc: Any, multicast: Multicast, final_ts: int) -> None:
        command = multicast.payload
        result = self._apply(command)
        self.applied_log.append(multicast.mid)
        if self.runtime is not None:
            submitted = self._submit_times.pop(multicast.mid, None)
            if submitted is not None:
                self.latencies_ms.append(self.runtime.now() - submitted)
        callback = self._callbacks.pop(multicast.mid, None)
        if callback is not None:
            callback(result)

    def _mine(self, key: str) -> bool:
        return partition_of(key, self.n_partitions) == self.partition

    def _apply(self, command: Command) -> Any:
        if isinstance(command, Put):
            if self._mine(command.key):
                previous = self.state.get(command.key)
                self.state[command.key] = command.value
                return previous
            return None
        if isinstance(command, Get):
            if self._mine(command.key):
                return self.state.get(command.key)
            return None
        if isinstance(command, Delete):
            if self._mine(command.key):
                return self.state.pop(command.key, None) is not None
            return False
        if isinstance(command, Increment):
            if self._mine(command.key):
                value = self.state.get(command.key, 0) + command.amount
                self.state[command.key] = value
                return value
            return None
        if isinstance(command, Transaction):
            applied = 0
            for op in command.ops:
                kind, key = op[0], op[1]
                if not self._mine(key):
                    continue
                if kind == "set":
                    self.state[key] = op[2]
                else:  # incr
                    self.state[key] = self.state.get(key, 0) + op[2]
                applied += 1
            return applied
        raise TypeError(f"unknown command {command!r}")
