"""Replicated log (multi-decree Paxos) on top of single-decree instances.

The classic "atomic broadcast inside a group" substrate that pre-PrimCast
multicast protocols build on ([19, 37]: consensus maintains the group
clock and timestamps messages). PrimCast's whole point is *not* needing
this on the delivery path; we provide it anyway as a substrate —
completing the consensus package and enabling the classic construction
in tests/comparisons.

A stable leader assigns commands to consecutive slots and runs phase-2
Paxos per slot; followers apply decided slots in order. Leader handover
reuses the single-decree phase-1 machinery per slot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .paxos import PaxosNode

ApplyCallback = Callable[[int, Any], None]


class ReplicatedLog:
    """One member's view of a totally ordered command log.

    Args:
        pid: this member's process id.
        members: group member pids (members[0] is the initial leader).
        send_fn: transport callable ``send_fn(pids, msg)``.
        on_apply: fired as ``on_apply(slot, command)`` in slot order,
            exactly once per slot.
        quorum_size: defaults to majority.
    """

    def __init__(
        self,
        pid: int,
        members: List[int],
        send_fn: Callable[[List[int], Any], None],
        on_apply: ApplyCallback,
        quorum_size: Optional[int] = None,
    ):
        self.pid = pid
        self.members = list(members)
        self.on_apply = on_apply
        self.is_leader = pid == members[0]
        self._next_slot = 0  # leader: next slot to assign
        self._apply_cursor = 0  # next slot to apply locally
        self._decided: Dict[int, Any] = {}
        self.node = PaxosNode(
            pid,
            members,
            send_fn=send_fn,
            on_decide=self._on_decide,
            quorum_size=quorum_size,
            skip_phase1=True,
        )

    # ------------------------------------------------------------------

    def append(self, command: Any) -> int:
        """Leader-only: assign ``command`` the next slot and propose it.

        Returns the slot number.
        """
        if not self.is_leader:
            raise RuntimeError(f"process {self.pid} is not the log leader")
        slot = self._next_slot
        self._next_slot += 1
        self.node.propose(("slot", slot), command)
        return slot

    def handle(self, src: int, msg: Any) -> bool:
        """Feed a consensus message; returns False if not one."""
        return self.node.handle(src, msg)

    def decided_upto(self) -> int:
        """Number of contiguously applied slots."""
        return self._apply_cursor

    def value_at(self, slot: int) -> Any:
        """Decided value for ``slot`` (None if undecided)."""
        return self._decided.get(slot)

    # ------------------------------------------------------------------

    def _on_decide(self, instance: Any, value: Any) -> None:
        _, slot = instance
        self._decided[slot] = value
        while self._apply_cursor in self._decided:
            slot = self._apply_cursor
            self._apply_cursor += 1
            self.on_apply(slot, self._decided[slot])
