"""Content-addressed on-disk cache for sweep results.

The simulation is a pure function of a :class:`~repro.harness.parallel.
PointSpec` and the simulator's source code — so its result can be
memoized under a key derived from exactly those two inputs:

* the **spec key**: SHA-256 of the spec's canonical (sorted-keys) JSON;
* the **code fingerprint**: SHA-256 over the per-file content hashes of
  every ``.py`` file under ``src/repro/{core,sim,baselines,rmcast,
  election,consensus,workload,harness}`` — every package the simulated
  event path can reach (the DET001 determinism scope plus the harness
  that drives it).

Layout::

    .repro-cache/
        <code-fingerprint>/
            <spec-key>.json     # {"spec": {...}, "result": RunResult dict}

Any edit to a fingerprinted source file changes the fingerprint, which
changes the directory every lookup goes through — the whole cache is
invalidated automatically. Old generation directories are retained up
to a small budget (:attr:`ResultCache.keep_generations`, least recently
used evicted first) so two checkouts or a bisect sharing one cache
directory keep each other's warm entries instead of destroying them.
Corrupt or unreadable entries are treated as misses and deleted, never
raised.

The cache never touches the wall clock and derives nothing from ambient
randomness (it is inside the DET001 static-analysis scope); entry writes
go through ``os.replace`` so concurrent executors can share a cache
directory without torn reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Optional, Tuple

from typing import Any

from .parallel import WorkSpec
from .runner import RunResult

#: Default cache directory (relative to the invoking process's cwd).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Packages (under ``src/repro``) whose source feeds the fingerprint:
#: everything a ``run_load_point`` or chaos-case outcome can depend on.
#: This must cover the full import closure of the simulated event path —
#: the runner pulls in ``election`` (Ω oracles), ``core`` pulls in
#: ``rmcast`` (FIFO substrate), the baselines pull in ``consensus``, the
#: chaos explorer pulls in ``verify`` (property checkers) and the
#: substrate seam annotations reference ``net`` (the Runtime protocols)
#: — pinned by ``tests/harness/test_cache.py``.
FINGERPRINT_PACKAGES: Tuple[str, ...] = (
    "core",
    "sim",
    "baselines",
    "rmcast",
    "election",
    "consensus",
    "workload",
    "harness",
    "verify",
    "chaos",
    "net",
)

#: Where ``src/repro`` lives, resolved from this file.
_DEFAULT_SRC_ROOT = Path(__file__).resolve().parents[1]


def code_fingerprint(src_root: Optional[Path] = None) -> str:
    """SHA-256 over (relative path, content hash) of fingerprinted sources.

    Files are visited in sorted relative-path order so the digest is
    stable across platforms and filesystems.
    """
    root = Path(src_root) if src_root is not None else _DEFAULT_SRC_ROOT
    digest = hashlib.sha256()
    for package in FINGERPRINT_PACKAGES:
        base = root / package
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            digest.update(rel.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()


def spec_key(spec: WorkSpec) -> str:
    """SHA-256 of the spec's canonical JSON."""
    canonical = json.dumps(spec.canonical(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store mapping a :class:`WorkSpec` to its result.

    Args:
        root: cache directory (created lazily on the first store).
        src_root: override for the fingerprinted source tree — tests
            point this at synthetic trees to exercise invalidation.
        keep_generations: how many generation directories (current
            included) to retain; older generations beyond the budget are
            evicted least-recently-used first. Keeping a few lets two
            checkouts or a bisect share one cache directory without
            repeatedly destroying each other's warm entries.

    Attributes:
        hits / misses / stores: lookup counters for this instance. A
            warm sweep shows ``misses == 0`` — no simulation ran.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        src_root: Optional[Path] = None,
        keep_generations: int = 4,
    ) -> None:
        if keep_generations < 1:
            raise ValueError("keep_generations must be at least 1")
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.fingerprint = code_fingerprint(src_root)
        self.keep_generations = keep_generations
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._touch_current_generation()
        self._prune_stale_generations()

    # -- layout ---------------------------------------------------------

    @property
    def generation_dir(self) -> Path:
        """Directory holding entries for the current code fingerprint."""
        return self.root / self.fingerprint

    def entry_path(self, spec: WorkSpec) -> Path:
        return self.generation_dir / f"{spec_key(spec)}.json"

    def _touch_current_generation(self) -> None:
        """Mark the current generation as most recently used, so a
        bisect hopping between two fingerprints keeps both warm."""
        gen = self.generation_dir
        if gen.is_dir():
            try:
                os.utime(gen)
            except OSError:
                pass

    def _prune_stale_generations(self) -> None:
        """Evict generation directories beyond the retention budget.

        The current generation always survives; other fingerprints'
        directories are kept newest-first (by directory mtime, name as
        a deterministic tie-break) up to ``keep_generations`` total.
        """
        if not self.root.is_dir():
            return
        others = []
        for child in sorted(self.root.iterdir()):
            if child.is_dir() and child.name != self.fingerprint:
                try:
                    mtime = child.stat().st_mtime
                except OSError:
                    mtime = 0.0
                others.append((mtime, child.name, child))
        others.sort(reverse=True)
        # One retention slot is always the current generation's.
        for _, _, stale in others[self.keep_generations - 1:]:
            shutil.rmtree(stale, ignore_errors=True)

    # -- lookup / store -------------------------------------------------

    def get(self, spec: WorkSpec) -> Optional[Any]:
        """Cached result for ``spec``, or None. Corrupt entries are
        discarded (deleted) and reported as misses, never raised.

        Decoding dispatches on the spec: a spec that defines
        ``result_from_dict`` (e.g. the chaos explorer's ``CaseSpec``,
        whose results are ``CaseResult``) decodes through it; legacy
        specs without one decode as :class:`RunResult`.
        """
        decode = getattr(spec, "result_from_dict", RunResult.from_dict)
        path = self.entry_path(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = decode(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Truncated write, hand-edited file, schema drift: treat as
            # absent and clear the slot so the re-run can repopulate it.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: WorkSpec, result: Any) -> Path:
        """Store ``result`` under ``spec``'s key (atomic replace)."""
        path = self.entry_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"spec": spec.canonical(), "result": result.to_dict()}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path

    def clear(self) -> None:
        """Delete every entry (all generations)."""
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
