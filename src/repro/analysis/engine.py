"""Analysis driver: file discovery, module naming, rule execution.

The engine turns paths into :class:`~repro.analysis.base.ModuleInfo`
records, runs every registered rule whose scope matches, then applies
the config's allowlist and severity overrides. Findings come back sorted
by ``(path, line, rule)`` so output is stable across runs and platforms
— the analysis tool holds itself to the determinism policy it enforces.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from .base import RULES, Finding, ModuleInfo, Rule
from .config import DEFAULT_CONFIG, AnalysisConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .cache import AnalysisCache


class AnalysisError(Exception):
    """An internal failure of the analysis itself (a rule crashed).

    Distinct from findings: findings are facts about the analysed code,
    an :class:`AnalysisError` is a bug in *this* package. The CLI maps
    it to exit code 2 (vs 1 for findings) and the message names the
    offending file and rule so a CI failure is immediately diagnosable.
    """

    def __init__(self, path: str, rule_id: str, cause: BaseException) -> None:
        self.path = path
        self.rule_id = rule_id
        self.cause = cause
        super().__init__(
            f"internal analysis error in {path} (rule {rule_id}): "
            f"{type(cause).__name__}: {cause}"
        )


def module_name_for(path: Path) -> str:
    """Dotted module name for a source file inside the ``repro`` tree.

    Uses the last ``repro`` path component as the package root (the repo
    keeps its sources under ``src/repro``). Files outside any ``repro``
    directory get a best-effort name from their stem.
    """
    parts = list(path.with_suffix("").parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            dotted = ".".join(parts[i:])
            return dotted[: -len(".__init__")] if dotted.endswith(".__init__") else dotted
    return path.stem


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(set(files))


def load_module(path: Path) -> ModuleInfo:
    """Parse one source file into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=str(path), module=module_name_for(path), tree=tree, source=source
    )


def analyze_module(
    mod: ModuleInfo,
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run rules over one parsed module, applying allowlist/severity."""
    active = list(rules) if rules is not None else list(RULES.values())
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(mod.module, config):
            continue
        try:
            for finding in rule.check(mod, config):
                if config.is_allowed(finding.rule, finding.context):
                    continue
                severity = config.severity_for(finding.rule, finding.severity)
                if severity != finding.severity:
                    finding = dataclasses.replace(finding, severity=severity)
                findings.append(finding)
        except Exception as exc:
            raise AnalysisError(mod.path, rule.rule_id, exc) from exc
    return findings


def analyze_paths(
    paths: Sequence[Path],
    config: AnalysisConfig = DEFAULT_CONFIG,
    rules: Optional[Iterable[Rule]] = None,
    cache: Optional["AnalysisCache"] = None,
) -> List[Finding]:
    """Analyse every python file under ``paths``; sorted, filtered.

    With a ``cache``, files whose content hash was analysed before (by
    the same analysis version / config / rule set — all folded into the
    cache fingerprint) are served without parsing or rule execution.
    """
    active = list(rules) if rules is not None else list(RULES.values())
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        if cache is not None:
            cached = cache.get(path)
            if cached is not None:
                findings.extend(cached)
                continue
        file_findings = analyze_module(load_module(path), config, active)
        if cache is not None:
            cache.put(path, file_findings)
        findings.extend(file_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
