"""Parallel sweep executor: shard independent load points across cores.

Every figure of §7 is a grid of fully independent, deterministic
:func:`~repro.harness.runner.run_load_point` calls — each one builds its
own :class:`~repro.sim.events.Scheduler` and derives all randomness from
its own root seed via :func:`repro.sim.rng.child_rng`. Nothing is shared
between points, so the grid can be fanned out over a process pool and
merged back **in spec order**, producing output bit-identical to the
serial loop (pinned by ``tests/harness/test_parallel.py``).

The unit of work is a :class:`PointSpec`: a frozen, JSON-canonicalizable
description of one load point. Specs serve two masters:

* the :class:`SweepExecutor` pickles them to worker processes (the
  worker rebuilds the scenario from the Table 2 registry and calls
  ``run_load_point``), and
* the content-addressed result cache (:mod:`repro.harness.cache`) hashes
  their canonical JSON as half of the cache key.

Determinism: workers receive the per-point seed inside the spec — the
same seed the serial path would pass — and ``run_load_point`` derives
every RNG stream from it through ``child_rng``. This module itself draws
no randomness and never reads the wall clock; it is inside the DET001
static-analysis scope (see ``repro.analysis.config.DET_SCOPE``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..sim.costs import CostModel
from ..core.gc import DEFAULT_COMPACTION_INTERVAL_MS
from ..workload.scenarios import (
    Scenario,
    lan_fleet,
    lan_scenario,
    lan_sustained,
    wan_colocated_leaders,
    wan_distributed_leaders,
)
from .pool import WorkerPool, default_mp_context
from .runner import RunResult, run_load_point

class WorkSpec(Protocol):
    """What the :class:`SweepExecutor` needs from a unit of work.

    :class:`PointSpec` is the canonical implementation; the chaos
    explorer's ``CaseSpec`` (:mod:`repro.chaos.explorer`) is another.
    Implementations must be picklable (workers receive them by value)
    and deterministic: ``run()`` must be a pure function of the spec.
    """

    def canonical(self) -> Dict[str, Any]:
        """JSON-safe dict with a stable field set (cache-key input)."""
        ...

    def run(self) -> Any:
        """Execute the unit of work and return its result."""
        ...


#: Canonical scenario name -> builder. A :class:`PointSpec` stores the
#: scenario by (name, n_groups, group_size) so it stays picklable and
#: content-addressable; workers rebuild the scenario from this registry.
SCENARIO_BUILDERS: Dict[str, Callable[[int, int], Scenario]] = {
    "LAN": lan_scenario,
    "LAN - fleet": lan_fleet,
    "LAN - sustained": lan_sustained,
    "WAN - colocated leaders": wan_colocated_leaders,
    "WAN - distributed leaders": wan_distributed_leaders,
}


def build_scenario(name: str, n_groups: int, group_size: int) -> Scenario:
    """Rebuild a Table 2 scenario from its canonical name and shape."""
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; the sweep executor only handles the "
            f"Table 2 scenarios {sorted(SCENARIO_BUILDERS)} (custom latency "
            f"geometries cannot be reconstructed in worker processes)"
        ) from None
    return builder(n_groups, group_size)


def scenario_matches_registry(scenario: Scenario) -> bool:
    """True when ``scenario`` is faithfully reconstructable by name.

    A worker (or a cache lookup) rebuilds the scenario from
    :data:`SCENARIO_BUILDERS` using only ``(name, n_groups,
    group_size)``, so a caller-customized object — a ``dataclasses.
    replace`` with different RTTs, or a swapped latency builder — would
    silently be replaced by the registry default. This check compares
    the rebuild field-for-field so such scenarios are detected instead
    of mis-simulated. ``epsilon_ms`` is excluded: the spec captures it
    explicitly, so a customized skew bound round-trips fine.
    """
    builder = SCENARIO_BUILDERS.get(scenario.name)
    if builder is None:
        return False
    rebuilt = builder(scenario.n_groups, scenario.group_size)
    return (
        rebuilt.description == scenario.description
        and rebuilt.cross_group_rtt_ms == scenario.cross_group_rtt_ms
        and rebuilt.intra_group_rtt_ms == scenario.intra_group_rtt_ms
        # latency builders are stateless callables: same class, same model
        and type(rebuilt._latency_builder) is type(scenario._latency_builder)
    )


def cost_model_spec(model: Optional[CostModel]) -> Optional[Dict[str, Any]]:
    """Canonical, JSON-safe description of a cost model (None = default).

    :class:`~repro.sim.costs.CostModel` is a pure value object — per-kind
    cost tables plus defaults — so its full parameter set is the spec.
    """
    if model is None:
        return None
    return {
        "recv_costs": dict(model.recv_costs),
        "send_costs": dict(model.send_costs),
        "default_recv": model.default_recv,
        "default_send": model.default_send,
    }


def cost_model_from_spec(spec: Optional[Dict[str, Any]]) -> Optional[CostModel]:
    """Inverse of :func:`cost_model_spec`."""
    if spec is None:
        return None
    return CostModel(
        recv_costs=dict(spec["recv_costs"]),
        send_costs=dict(spec["send_costs"]),
        default_recv=spec["default_recv"],
        default_send=spec["default_send"],
    )


@dataclass(frozen=True)
class PointSpec:
    """One (protocol, scenario, destinations, load) point, fully described.

    Every field is JSON-safe; ``canonical()`` is the stable dict the
    cache hashes. ``cost_model`` is the expanded cost table from
    :func:`cost_model_spec` (None = the calibrated default model).
    """

    protocol: str
    scenario: str
    n_groups: int
    group_size: int
    n_dest_groups: int
    outstanding: int
    seed: int = 1
    warmup_ms: float = 500.0
    measure_ms: float = 1000.0
    keep_samples: bool = False
    batching_ms: float = 0.0
    epsilon_ms: Optional[float] = None
    cost_model: Optional[Dict[str, Any]] = field(default=None, compare=True)
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS

    def canonical(self) -> Dict[str, Any]:
        """JSON-safe dict with a stable field set (cache-key input)."""
        return asdict(self)

    @staticmethod
    def result_from_dict(payload: Dict[str, Any]) -> RunResult:
        """Decode a cached result (the cache dispatches on the spec so
        chaos ``CaseSpec`` entries can decode to ``CaseResult``)."""
        return RunResult.from_dict(payload)

    def run(self) -> RunResult:
        """Execute this point (in whatever process we happen to be)."""
        scenario = build_scenario(self.scenario, self.n_groups, self.group_size)
        return run_load_point(
            self.protocol,
            scenario,
            self.n_dest_groups,
            self.outstanding,
            seed=self.seed,
            warmup_ms=self.warmup_ms,
            measure_ms=self.measure_ms,
            cost_model=cost_model_from_spec(self.cost_model),
            epsilon_ms=self.epsilon_ms,
            keep_samples=self.keep_samples,
            batching_ms=self.batching_ms,
            compaction_interval_ms=self.compaction_interval_ms,
        )


def point_spec(
    protocol: str,
    scenario: Scenario,
    n_dest_groups: int,
    outstanding: int,
    seed: int = 1,
    warmup_ms: float = 500.0,
    measure_ms: float = 1000.0,
    cost_model: Optional[CostModel] = None,
    epsilon_ms: Optional[float] = None,
    keep_samples: bool = False,
    batching_ms: float = 0.0,
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
) -> PointSpec:
    """Build a :class:`PointSpec` mirroring one ``run_load_point`` call.

    ``scenario.epsilon_ms`` is captured into the spec explicitly (unless
    overridden), so a caller who customized the skew bound on the
    scenario object still round-trips through worker reconstruction.
    Any *other* customization cannot round-trip and is rejected here —
    :func:`repro.harness.experiments.sweep` falls back to running such
    scenarios inline instead of building specs.
    """
    if scenario.name not in SCENARIO_BUILDERS:
        raise ValueError(
            f"unknown scenario {scenario.name!r}; the sweep executor only "
            f"handles the Table 2 scenarios {sorted(SCENARIO_BUILDERS)}"
        )
    if not scenario_matches_registry(scenario):
        raise ValueError(
            f"scenario {scenario.name!r} does not match its Table 2 registry "
            f"definition (customized geometry?); workers rebuild scenarios "
            f"from (name, n_groups, group_size) only, so a customized object "
            f"would silently be replaced by the registry default"
        )
    eps = epsilon_ms if epsilon_ms is not None else scenario.epsilon_ms
    return PointSpec(
        protocol=protocol,
        scenario=scenario.name,
        n_groups=scenario.n_groups,
        group_size=scenario.group_size,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        seed=seed,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        keep_samples=keep_samples,
        batching_ms=batching_ms,
        epsilon_ms=eps,
        cost_model=cost_model_spec(cost_model),
        compaction_interval_ms=compaction_interval_ms,
    )


def expand_sweep(
    protocols: Sequence[str],
    scenario: Scenario,
    n_dest_groups: int,
    loads: Sequence[int],
    seed: int = 1,
    warmup_ms: float = 500.0,
    measure_ms: float = 1000.0,
    cost_model: Optional[CostModel] = None,
    epsilon_ms: Optional[float] = None,
    keep_samples: bool = False,
    batching_ms: float = 0.0,
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
) -> List[PointSpec]:
    """Flatten a protocol × load grid into specs, in serial-sweep order."""
    return [
        point_spec(
            protocol,
            scenario,
            n_dest_groups,
            outstanding,
            seed=seed,
            warmup_ms=warmup_ms,
            measure_ms=measure_ms,
            cost_model=cost_model,
            epsilon_ms=epsilon_ms,
            keep_samples=keep_samples,
            batching_ms=batching_ms,
            compaction_interval_ms=compaction_interval_ms,
        )
        for protocol in protocols
        for outstanding in loads
    ]


def _run_spec(spec: WorkSpec) -> Any:
    """Pool worker entry point (module-level so it pickles by reference)."""
    return spec.run()


class SweepExecutor:
    """Runs a flat list of :class:`WorkSpec` and merges results in order.

    Args:
        jobs: worker processes. 1 (the default) runs inline in this
            process — no pool, byte-for-byte the historical serial path.
        cache: optional :class:`~repro.harness.cache.ResultCache`. Hits
            skip simulation entirely; misses run and populate — each
            result is written the moment its case completes (streaming
            checkpoint), so a killed campaign resumes from the cache
            with zero re-runs of completed cases.
        mp_context: multiprocessing start method (default: ``fork`` when
            available, else ``spawn``).
        pool: share an existing :class:`~repro.harness.pool.WorkerPool`
            instead of owning one — several executors (e.g. a figure
            sweep and a chaos campaign in one process) then reuse the
            same long-lived workers. A shared pool is never closed by
            the executor; ``jobs`` is taken from the pool.

    The executor owns one persistent :class:`WorkerPool`: workers are
    spawned on the first parallel batch and reused for every subsequent
    :meth:`run`, which is what amortizes spawn + import across a whole
    campaign (hundreds of sweeps) instead of paying it per sweep. Call
    :meth:`close` (or use the executor as a context manager) when done;
    leaked pools are reaped by a GC finalizer.

    After each :meth:`run`, :attr:`last_stats` reports how many points
    were served from cache vs simulated — the warm-cache acceptance
    check ("zero simulation events executed") asserts ``ran == 0``.
    :attr:`total_stats` accumulates the same counters over the
    executor's lifetime, so a figure that issues several sweeps (one per
    destination count) can report the whole run, not just the last
    sweep.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[Any] = None,
        mp_context: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if pool is not None:
            jobs = pool.jobs
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.mp_context = mp_context
        self._pool: Optional[WorkerPool] = pool
        self._owns_pool = pool is None
        self.last_stats: Dict[str, int] = {"points": 0, "hits": 0, "ran": 0}
        self.total_stats: Dict[str, int] = {"points": 0, "hits": 0, "ran": 0}

    # -- pool lifecycle -------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        """The persistent worker pool (created lazily)."""
        if self._pool is None:
            self._pool = WorkerPool(jobs=self.jobs, mp_context=self.mp_context)
        return self._pool

    def pool_stats(self) -> Dict[str, Any]:
        """Pool-reuse counters (``{}`` until the first :meth:`run`)."""
        return self._pool.stats() if self._pool is not None else {}

    def close(self) -> None:
        """Shut down the owned worker pool (no-op for shared pools)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- accounting -----------------------------------------------------

    def _record(self, points: int, hits: int, ran: int) -> None:
        self.last_stats = {"points": points, "hits": hits, "ran": ran}
        for key, value in self.last_stats.items():
            self.total_stats[key] += value

    def note_direct_runs(self, n: int) -> None:
        """Account for ``n`` points simulated outside the spec machinery
        (``sweep()`` runs non-registry scenarios inline; they bypass the
        pool and the cache but still belong in the run's totals)."""
        self._record(n, 0, n)

    # -- execution ------------------------------------------------------

    def run(
        self,
        specs: Sequence[WorkSpec],
        on_result: Optional[Callable[[int, WorkSpec, Any], None]] = None,
    ) -> List[Any]:
        """Execute every spec; results come back in spec order.

        ``on_result(index, spec, result)`` streams completions: cache
        hits fire immediately (in spec order, before any dispatch),
        misses fire in *completion* order as workers finish — by the
        time the callback sees a miss, its result is already persisted
        in the cache, so an abort raised from the callback leaves a
        resumable checkpoint behind.
        """
        results: List[Optional[Any]] = [None] * len(specs)
        misses: List[int] = []
        for i, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                if on_result is not None:
                    on_result(i, spec, cached)
            else:
                misses.append(i)
        if misses:

            def emit(local_index: int, spec: WorkSpec, result: Any) -> None:
                global_index = misses[local_index]
                results[global_index] = result
                if self.cache is not None:
                    self.cache.put(spec, result)
                if on_result is not None:
                    on_result(global_index, spec, result)

            self.pool.run([specs[i] for i in misses], on_result=emit)
        self._record(len(specs), len(specs) - len(misses), len(misses))
        return [r for r in results if r is not None]
