"""Checkers for the atomic multicast properties of §2.2.

These run over per-process delivery logs collected after a simulation:

* **Integrity** — every message delivered at most once per process, and
  only if it was multicast.
* **Uniform agreement** — at quiescence, every correct destination
  process delivered every message any process delivered.
* **Global total order** — the ≺ relation (m ≺ m' iff some process
  delivers m before m') is acyclic. ≺ is the transitive closure of the
  union of the per-process delivery orders, and a cycle in a closure
  exists iff one exists in the base graph, so we cycle-check the union of
  consecutive-delivery edges (linear time).
* **Uniform prefix order** — for processes p, q both in the destinations
  of m and m', if p delivered m and q delivered m', then p delivered m'
  before m or q delivered m before m'. (O(pairs²); meant for the
  moderate-size runs of the test suite.)
* **Timestamp order** — per-process deliveries happen in non-decreasing
  ``(final_ts, mid)`` order, and all processes agree on each message's
  final timestamp (protocol-level sanity, stronger than required).

Each checker raises :class:`PropertyViolation` with a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.messages import MessageId

# One process's log: [(mid, final_ts, time), ...] in delivery order.
DeliveryLog = List[Tuple[MessageId, int, float]]


class PropertyViolation(AssertionError):
    """An atomic multicast property does not hold; message explains.

    Besides the human-readable message, a violation carries structured
    fields so tooling (the chaos explorer, campaign reports) can
    aggregate violations as data instead of parsing strings:

    * ``prop`` — short property name (``"integrity"``,
      ``"uniform-agreement"``, ``"acyclic-order"``, ``"prefix-order"``,
      ``"timestamp-order"``, ``"truncation-safety"``, or
      ``"invariant"`` for runtime monitors);
    * ``mids`` — the offending message id(s), possibly empty.
    """

    def __init__(
        self,
        message: str,
        prop: str = "",
        mids: Sequence[MessageId] = (),
    ) -> None:
        super().__init__(message)
        self.prop = prop
        self.mids: Tuple[MessageId, ...] = tuple(mids)


@dataclass(frozen=True)
class Violation:
    """One property violation as a structured record."""

    prop: str
    message: str
    mids: Tuple[MessageId, ...] = field(default=())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (message ids become ``[pid, seq]`` lists)."""
        return {
            "prop": self.prop,
            "message": self.message,
            "mids": [list(mid) for mid in self.mids],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Violation":
        """Inverse of :meth:`to_dict` (cache/replay round trip)."""
        return cls(
            prop=str(payload["prop"]),
            message=str(payload["message"]),
            mids=tuple(
                (int(mid[0]), int(mid[1])) for mid in payload.get("mids", [])
            ),
        )

    @classmethod
    def from_exception(cls, exc: PropertyViolation) -> "Violation":
        return cls(prop=exc.prop or "unknown", message=str(exc), mids=exc.mids)


def check_integrity(
    logs: Dict[int, DeliveryLog], multicast_mids: Set[MessageId]
) -> None:
    """No duplicate deliveries; nothing delivered that was not sent."""
    for pid, log in logs.items():
        seen: Set[MessageId] = set()
        for mid, _, _ in log:
            if mid in seen:
                raise PropertyViolation(
                    f"process {pid} delivered {mid} twice",
                    prop="integrity",
                    mids=(mid,),
                )
            seen.add(mid)
            if mid not in multicast_mids:
                raise PropertyViolation(
                    f"process {pid} delivered {mid} which was never a-multicast",
                    prop="integrity",
                    mids=(mid,),
                )


def check_uniform_agreement(
    logs: Dict[int, DeliveryLog],
    dest_pids_of: Dict[MessageId, Set[int]],
    correct_pids: Set[int],
) -> None:
    """If anyone delivered m, every correct destination delivered m.

    Only sound after the run has quiesced (all protocol messages
    processed).
    """
    delivered_by: Dict[int, Set[MessageId]] = {
        pid: {mid for mid, _, _ in log} for pid, log in logs.items()
    }
    anyone: Set[MessageId] = set()
    for mids in delivered_by.values():
        anyone |= mids
    for mid in anyone:
        for pid in dest_pids_of[mid]:
            if pid in correct_pids and mid not in delivered_by.get(pid, set()):
                raise PropertyViolation(
                    f"{mid} was delivered somewhere but not at correct "
                    f"destination {pid}",
                    prop="uniform-agreement",
                    mids=(mid,),
                )


def check_acyclic_order(logs: Dict[int, DeliveryLog]) -> None:
    """Global total order: the union of per-process delivery orders has
    no cycle (iterative three-color DFS)."""
    edges: Dict[MessageId, Set[MessageId]] = {}
    nodes: Set[MessageId] = set()
    for log in logs.values():
        for (a, _, _), (b, _, _) in zip(log, log[1:]):
            edges.setdefault(a, set()).add(b)
            nodes.add(a)
            nodes.add(b)
        if log:
            nodes.add(log[0][0])
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[MessageId, int] = {n: WHITE for n in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[MessageId, Optional[Iterator[MessageId]]]] = [
            (root, None)
        ]
        while stack:
            node, it = stack[-1]
            if it is None:
                color[node] = GRAY
                it = iter(edges.get(node, ()))
                stack[-1] = (node, it)
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    raise PropertyViolation(
                        f"delivery order cycle involving {node} -> {nxt}",
                        prop="acyclic-order",
                        mids=(node, nxt),
                    )
                if color[nxt] == WHITE:
                    stack.append((nxt, None))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()


def check_prefix_order(
    logs: Dict[int, DeliveryLog],
    dest_pids_of: Dict[MessageId, Set[int]],
) -> None:
    """Uniform prefix order (§2.2), checked literally over all pairs."""
    positions: Dict[int, Dict[MessageId, int]] = {
        pid: {mid: i for i, (mid, _, _) in enumerate(log)}
        for pid, log in logs.items()
    }
    pids = sorted(logs)
    for i, p in enumerate(pids):
        for q in pids[i + 1 :]:
            pos_p, pos_q = positions[p], positions[q]
            for m in pos_p:
                if p not in dest_pids_of[m] or q not in dest_pids_of[m]:
                    continue
                for m2 in pos_q:
                    if m2 == m:
                        continue
                    if p not in dest_pids_of[m2] or q not in dest_pids_of[m2]:
                        continue
                    # p delivered m, q delivered m2; one of them must
                    # have delivered the other message first.
                    p_first = m2 in pos_p and pos_p[m2] < pos_p[m]
                    q_first = m in pos_q and pos_q[m] < pos_q[m2]
                    if not (p_first or q_first):
                        raise PropertyViolation(
                            f"prefix order violated: {p} delivered {m}, "
                            f"{q} delivered {m2}, neither saw the other first",
                            prop="prefix-order",
                            mids=(m, m2),
                        )


def check_truncation_safety(
    truncated: Dict[int, Sequence[MessageId]],
    logs: Dict[int, DeliveryLog],
    dest_pids_of: Dict[MessageId, Set[int]],
    correct_pids: Set[int],
) -> None:
    """State GC only discards messages whose delivery is settled.

    ``truncated`` maps each pid to the mids whose T entries that process
    truncated (the ``"truncate"`` probe events of
    ``PrimCastProcess.compact_delivered``). Truncation is legal only for
    the group-stable delivered prefix, so every truncated mid must have
    been a-delivered (1) at the truncating process itself and (2) — at
    quiescence — at every correct destination of the message. A
    violation means the watermark ran ahead of delivery and the GC may
    have destroyed state the protocol still needed.
    """
    delivered_by: Dict[int, Set[MessageId]] = {
        pid: {mid for mid, _, _ in log} for pid, log in logs.items()
    }
    for pid in sorted(truncated):
        own = delivered_by.get(pid, set())
        for mid in truncated[pid]:
            if mid not in own:
                raise PropertyViolation(
                    f"process {pid} truncated {mid} without delivering it",
                    prop="truncation-safety",
                    mids=(mid,),
                )
            for dest in dest_pids_of.get(mid, set()):
                if dest in correct_pids and mid not in delivered_by.get(dest, set()):
                    raise PropertyViolation(
                        f"process {pid} truncated {mid} but correct "
                        f"destination {dest} never delivered it",
                        prop="truncation-safety",
                        mids=(mid,),
                    )


def check_timestamp_order(logs: Dict[int, DeliveryLog]) -> None:
    """Deliveries in non-decreasing (final_ts, mid); consistent finals."""
    finals: Dict[MessageId, Tuple[int, int]] = {}
    for pid, log in logs.items():
        prev: Optional[Tuple[int, MessageId]] = None
        for mid, final, _ in log:
            key = (final, mid)
            if prev is not None and key < prev:
                raise PropertyViolation(
                    f"process {pid} delivered {key} after {prev}",
                    prop="timestamp-order",
                    mids=(prev[1], mid),
                )
            prev = key
            if mid in finals and finals[mid][0] != final:
                raise PropertyViolation(
                    f"{mid} has final ts {final} at {pid} but "
                    f"{finals[mid][0]} at {finals[mid][1]}",
                    prop="timestamp-order",
                    mids=(mid,),
                )
            finals.setdefault(mid, (final, pid))


def check_all(
    logs: Dict[int, DeliveryLog],
    multicast_mids: Set[MessageId],
    dest_pids_of: Dict[MessageId, Set[int]],
    correct_pids: Set[int],
    prefix: bool = True,
) -> None:
    """Run every checker (prefix order optional: it is quadratic)."""
    check_integrity(logs, multicast_mids)
    check_uniform_agreement(logs, dest_pids_of, correct_pids)
    check_acyclic_order(logs)
    check_timestamp_order(logs)
    if prefix:
        check_prefix_order(logs, dest_pids_of)


def collect_violations(
    logs: Dict[int, DeliveryLog],
    multicast_mids: Set[MessageId],
    dest_pids_of: Dict[MessageId, Set[int]],
    correct_pids: Set[int],
    prefix: bool = True,
) -> List[Violation]:
    """Non-raising twin of :func:`check_all`.

    Runs every checker and returns the violations found as structured
    :class:`Violation` records, one per failing property (each checker
    stops at its first counterexample). An empty list means exactly that
    :func:`check_all` with the same arguments would not raise — the
    chaos explorer relies on this to aggregate campaign results instead
    of dying at the first violating schedule.
    """
    checkers: List[Callable[[], None]] = [
        lambda: check_integrity(logs, multicast_mids),
        lambda: check_uniform_agreement(logs, dest_pids_of, correct_pids),
        lambda: check_acyclic_order(logs),
        lambda: check_timestamp_order(logs),
    ]
    if prefix:
        checkers.append(lambda: check_prefix_order(logs, dest_pids_of))
    violations: List[Violation] = []
    for checker in checkers:
        try:
            checker()
        except PropertyViolation as exc:
            violations.append(Violation.from_exception(exc))
    return violations
