"""FIFO non-uniform reliable multicast (§2.2).

PrimCast and the baselines communicate exclusively through
``r-multicast`` / ``r-deliver``. The properties required are Validity,
Integrity, Non-uniform agreement and FIFO order; non-uniformity permits
one-communication-step implementations [Hadzilacos & Toueg 94], which is
what the paper's latency arithmetic assumes.

Implementation notes:

* FIFO order comes from the per-pair FIFO channels of the simulated
  network (the prototype relies on TCP the same way, §7.1).
* Integrity (deliver at most once, only if multicast) is enforced with a
  per-origin sequence number and a duplicate filter. The filter is
  *compacted*: because every channel is FIFO and (without relaying) each
  ``(origin, seq)`` envelope crosses a given channel exactly once,
  arrivals from one origin are strictly increasing in ``seq``, so a
  per-origin high watermark (one int per origin, O(origins) memory)
  replaces the historical ``(origin, seq)`` set that grew with every
  message ever received. In relay mode, copies of one envelope arrive
  over several channels and are not monotone; seqs above the
  direct-channel watermark are tracked in a sparse per-origin overflow
  set that drains as the watermark advances, bounding the filter by the
  out-of-order window instead of the run length.
* Non-uniform agreement: with reliable channels, direct per-destination
  sends suffice while the sender is correct; messages multicast by a
  process that crashes mid-send may be lost, which non-uniform agreement
  allows. An optional *relay* mode re-forwards every first delivery to
  the remaining destinations, making delivery resilient to sender crashes
  at the cost of redundant traffic.

Batching (opt-in, default off — §7.1's TCP message merging):

The paper's Rust prototype owes much of its throughput to batching the
small mergeable ``ack``/``bump`` messages on each TCP connection. The
endpoint reproduces that lever: with ``batching_ms > 0``, batchable
envelopes departing on the same ``(src, dst)`` channel within the flush
window are packed into a single :class:`Batch` wire message. Per-channel
FIFO is preserved — a non-batchable envelope flushes the channel's
pending batch before departing, so no envelope ever overtakes another on
one channel. With ``batching_ms == 0`` (the default) the layer is
completely inert and the wire trace is identical to the unbatched one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Set, Tuple

from ..sim.costs import CostModel
from ..sim.process import SimProcess

if TYPE_CHECKING:
    from ..net.runtime import SchedulerAPI, TransportAPI

#: Payload kinds the batching layer may coalesce: PrimCast's small
#: mergeable acknowledgement traffic (§7.1). Everything else always
#: departs immediately.
BATCHABLE_KINDS = frozenset(("ack", "bump"))


class Envelope:
    """Wire wrapper for an r-multicast payload.

    Exposes the payload's ``kind`` (precomputed at construction — the
    network and the cost model read it on every hop) so the CPU cost
    model charges for the actual protocol message being carried.
    """

    __slots__ = ("origin", "seq", "payload", "dests", "relayed", "kind")

    def __init__(self, origin: int, seq: int, payload: Any, dests: Tuple[int, ...], relayed: bool = False):
        self.origin = origin
        self.seq = seq
        self.payload = payload
        self.dests = dests
        self.relayed = relayed
        try:
            self.kind = payload.kind
        except AttributeError:
            self.kind = "rm"

    @property
    def mid(self) -> Any:
        """Multicast id of the payload if it has one (for tracing)."""
        return getattr(self.payload, "mid", None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Envelope {self.origin}:{self.seq} {self.kind}>"


class Batch:
    """A coalesced train of envelopes on one ``(src, dst)`` channel.

    One wire message regardless of how many envelopes it carries — the
    simulated counterpart of the prototype merging consecutive small
    messages on a TCP connection (§7.1). Envelopes are unwrapped in
    send order at the receiver, preserving channel FIFO.
    """

    __slots__ = ("envelopes",)
    kind = "batch"

    def __init__(self, envelopes: Tuple[Envelope, ...]):
        self.envelopes = envelopes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Batch of {len(self.envelopes)}>"


class FifoReliableMulticast:
    """Per-process endpoint of the reliable multicast layer.

    Args:
        owner: the process this endpoint belongs to.
        relay: enable crash-resilient relaying of first deliveries.
        batching_ms: flush window for ack/bump coalescing; 0 disables
            batching entirely (the default — wire-identical to the
            unbatched protocol).
        batch_kinds: payload kinds eligible for coalescing.
    """

    def __init__(
        self,
        owner: SimProcess,
        relay: bool = False,
        batching_ms: float = 0.0,
        batch_kinds: frozenset = BATCHABLE_KINDS,
    ):
        if batching_ms < 0:
            raise ValueError(f"batching_ms must be non-negative, got {batching_ms}")
        self.owner = owner
        self.relay = relay
        self.batching_ms = batching_ms
        self.batch_kinds = batch_kinds
        self._next_seq = 0
        # Dedupe watermark: origin -> highest seq delivered. Arrivals on
        # the direct origin->self channel are strictly increasing in seq
        # (per-channel FIFO, one transmission per (origin, seq, dst)), so
        # ``seq <= high`` means duplicate. O(origins), not O(history).
        self._dedupe_high: Dict[int, int] = {}
        # Relay mode only: seqs delivered via a relayed copy before the
        # direct copy arrived (they sit above the watermark). Drained as
        # the direct channel catches up, so the size is bounded by the
        # out-of-order window, not the run length.
        self._overflow: Dict[int, Set[int]] = {}
        # Per-destination coalescing buffers (only used when batching).
        self._pending: Dict[int, List[Envelope]] = {}
        self._armed: Set[int] = set()
        #: Batches actually sent / payloads they carried (perf reporting).
        self.batches_sent = 0
        self.batched_payloads = 0

    def multicast(self, payload: Any, dests: Iterable[int]) -> None:
        """r-multicast ``payload`` to process ids ``dests``.

        The sender delivers its own message too when it is a destination
        (self-channel, zero latency).
        """
        dests = tuple(dests)
        owner = self.owner
        env = Envelope(owner.pid, self._next_seq, payload, dests)
        self._next_seq += 1
        send = owner.send
        if self.batching_ms > 0.0:
            own_pid = owner.pid
            if env.kind in self.batch_kinds:
                for dst in dests:
                    # The self-channel is not a wire; deliver directly.
                    if dst == own_pid:
                        send(dst, env)
                    else:
                        self._enqueue_batched(dst, env)
                return
            # Non-batchable: flush any pending batch on each channel
            # first so envelopes never overtake each other (FIFO).
            pending = self._pending
            for dst in dests:
                if pending.get(dst):
                    self._flush(dst)
                send(dst, env)
            return
        if owner._in_handler and not owner.crashed:
            # Fast path: sends from inside a handler only append to the
            # owner's outgoing queue — skip the per-destination
            # ``send()`` frame (this loop runs for every multicast of
            # every protocol).
            append = owner._outgoing.append
            for dst in dests:
                append((dst, env))
            return
        for dst in dests:
            send(dst, env)

    # ------------------------------------------------------------------
    # batching internals
    # ------------------------------------------------------------------

    def _enqueue_batched(self, dst: int, env: Envelope) -> None:
        buf = self._pending.get(dst)
        if buf is None:
            buf = self._pending[dst] = []
        buf.append(env)
        if dst not in self._armed:
            self._armed.add(dst)
            self.owner.scheduler.call_after(self.batching_ms, self._flush_timer, dst)

    def _flush_timer(self, dst: int) -> None:
        self._armed.discard(dst)
        self._flush(dst)

    def _flush(self, dst: int) -> None:
        buf = self._pending.get(dst)
        if not buf:
            return
        self._pending[dst] = []
        if len(buf) == 1:
            self.owner.send(dst, buf[0])
        else:
            self.batches_sent += 1
            self.batched_payloads += len(buf)
            self.owner.send(dst, Batch(tuple(buf)))

    def flush_all(self) -> None:
        """Flush every pending batch immediately (e.g. before shutdown)."""
        for dst in list(self._pending):
            self._flush(dst)

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------

    def handle(self, src: int, env: Envelope) -> Optional[Tuple[int, Any]]:
        """Process an incoming envelope.

        Returns ``(origin, payload)`` exactly once per multicast (the
        r-delivery), or ``None`` for duplicates.

        Duplicate detection is watermark-based: any arriving seq at or
        below ``_dedupe_high[origin]`` was already delivered — when the
        direct copy of seq ``h`` arrived, channel FIFO guarantees every
        direct seq below ``h`` addressed to us had arrived before it.
        Without relaying that is the whole filter; with relaying, seqs
        above the watermark delivered out of order (via a relayed copy)
        live in the sparse ``_overflow`` set until the watermark passes
        them.
        """
        origin = env.origin
        seq = env.seq
        if seq <= self._dedupe_high.get(origin, -1):
            return None
        if not self.relay:
            self._dedupe_high[origin] = seq
            return origin, env.payload
        buf = self._overflow.get(origin)
        if env.relayed:
            if buf is not None and seq in buf:
                return None
            if buf is None:
                buf = self._overflow[origin] = set()
            buf.add(seq)
            return origin, env.payload
        # Direct copy: advance the watermark and drain overflow entries
        # the watermark has now passed.
        self._dedupe_high[origin] = seq
        duplicate = False
        if buf:
            duplicate = seq in buf
            remaining = {q for q in buf if q > seq}
            if remaining:
                self._overflow[origin] = remaining
            else:
                del self._overflow[origin]
        if duplicate:
            return None
        if origin != self.owner.pid:
            fwd = Envelope(origin, seq, env.payload, env.dests, relayed=True)
            own_pid = self.owner.pid
            for dst in env.dests:
                if dst != own_pid and dst != origin:
                    self.owner.send(dst, fwd)
        return origin, env.payload


class RMcastProcess(SimProcess):
    """A simulated process that communicates via reliable multicast.

    Subclasses implement :meth:`on_r_deliver`; everything arriving over
    the network is unwrapped and deduplicated by the rmcast endpoint.

    Args:
        batching_ms: opt-in ack/bump coalescing window (see
            :class:`FifoReliableMulticast`); 0 = off.
    """

    def __init__(
        self,
        pid: int,
        scheduler: "SchedulerAPI",
        network: "TransportAPI",
        cost_model: Optional[CostModel] = None,
        relay: bool = False,
        batching_ms: float = 0.0,
    ):
        super().__init__(pid, scheduler, network, cost_model)
        self.rm = FifoReliableMulticast(self, relay=relay, batching_ms=batching_ms)

    def r_multicast(self, payload: Any, dests: Iterable[int]) -> None:
        """r-multicast ``payload`` to the given process ids."""
        self.rm.multicast(payload, dests)

    def on_message(self, src: int, msg: Any) -> None:
        cls = msg.__class__
        if cls is Envelope:
            result = self.rm.handle(src, msg)
            if result is not None:
                self.on_r_deliver(result[0], result[1])
        elif cls is Batch:
            handle = self.rm.handle
            on_r_deliver = self.on_r_deliver
            for env in msg.envelopes:
                result = handle(src, env)
                if result is not None:
                    on_r_deliver(result[0], result[1])
        elif isinstance(msg, Envelope):
            result = self.rm.handle(src, msg)
            if result is not None:
                self.on_r_deliver(result[0], result[1])
        else:
            self.on_raw_message(src, msg)

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        """Handle an r-delivered payload. Override in subclasses."""
        raise NotImplementedError

    def on_raw_message(self, src: int, msg: Any) -> None:
        """Handle a non-rmcast message (e.g. client requests)."""
        raise NotImplementedError(
            f"{type(self).__name__} got unexpected raw message {msg!r}"
        )
