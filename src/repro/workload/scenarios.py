"""Deployment scenarios (the paper's Table 2).

All three scenarios deploy 8 groups of 3 replicas (configurable). WAN
latencies are emulated with a site RTT matrix and 5% standard deviation,
exactly as the paper does with Linux ``tc``:

=============================  =================  ====================
Scenario                       Cross-group RTT    Intra-group RTT
                               (between leaders)
=============================  =================  ====================
LAN                            0.09 ms            0.09 ms
WAN — colocated leaders        0.09 ms            60 / 76 / 130 ms
WAN — distributed leaders      90 ms              30 ms
=============================  =================  ====================

* *Colocated leaders*: 3 regions, each group has one replica per region,
  replica 0 (the leader) of every group in region 0 — so leaders talk at
  LAN latency while group-internal quorums pay WAN RTTs (values from the
  White-Box paper, which Table 2 cites).
* *Distributed leaders*: 8 regions of 3 datacenters; group g lives
  entirely in region g, one replica per datacenter. Leaders of different
  groups are 90 ms RTT apart — the convoy-effect stress test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.config import GroupConfig, uniform_groups
from ..sim.latency import JitteredLatency, LatencyModel, SiteMatrixLatency

#: RTT between two machines in the same datacenter (the paper's cluster).
LAN_RTT_MS = 0.09

#: Inter-region RTTs for the colocated-leaders scenario (from [20]).
COLOCATED_REGION_RTTS = (60.0, 76.0, 130.0)  # (r0-r1, r0-r2, r1-r2)

#: Distributed-leaders scenario RTTs.
DISTRIBUTED_CROSS_REGION_RTT_MS = 90.0
DISTRIBUTED_INTRA_REGION_RTT_MS = 30.0

#: Default clock skew bound for PrimCast HC (§6): 2ε ≈ an order of
#: magnitude below the cross-group communication step of the
#: distributed-leaders deployment (Δ = 45 ms one-way).
DEFAULT_EPSILON_MS = 2.0


@dataclass
class Scenario:
    """A deployment: groups, placement and latency geometry."""

    name: str
    description: str
    n_groups: int
    group_size: int
    #: one-way mean latency between two group leaders (for reporting)
    cross_group_rtt_ms: float
    #: representative intra-group RTT(s) (for reporting)
    intra_group_rtt_ms: str
    #: builds the latency model given the group configuration
    _latency_builder: "LatencyBuilder" = field(repr=False)
    #: clock skew bound used by the HC variant in this scenario
    epsilon_ms: float = DEFAULT_EPSILON_MS

    def make_config(self) -> GroupConfig:
        """Group membership for this scenario."""
        return uniform_groups(self.n_groups, self.group_size)

    def make_latency(self, config: GroupConfig) -> LatencyModel:
        """Latency model for this scenario's placement."""
        return self._latency_builder(config)

    def table2_row(self) -> List[str]:
        """The scenario's Table 2 row."""
        return [
            self.name,
            f"{self.cross_group_rtt_ms}ms",
            self.intra_group_rtt_ms,
            self.description,
        ]


class LatencyBuilder:
    """Callable building a latency model from a config (picklable)."""

    def __call__(self, config: GroupConfig) -> LatencyModel:
        raise NotImplementedError


class _LanLatency(LatencyBuilder):
    def __call__(self, config: GroupConfig) -> LatencyModel:
        return JitteredLatency(LAN_RTT_MS / 2.0, stddev_frac=0.05)


class _ColocatedLatency(LatencyBuilder):
    def __call__(self, config: GroupConfig) -> LatencyModel:
        r01, r02, r12 = COLOCATED_REGION_RTTS
        rtt = [
            [LAN_RTT_MS, r01, r02],
            [r01, LAN_RTT_MS, r12],
            [r02, r12, LAN_RTT_MS],
        ]
        site_of: Dict[int, int] = {}
        for gid in range(config.n_groups):
            for idx, pid in enumerate(config.members(gid)):
                site_of[pid] = idx % 3  # replica i of every group in region i
        return SiteMatrixLatency(site_of, rtt, stddev_frac=0.05)


class _DistributedLatency(LatencyBuilder):
    def __call__(self, config: GroupConfig) -> LatencyModel:
        n_regions = config.n_groups
        dcs_per_region = max(len(config.members(g)) for g in range(n_regions))
        n_sites = n_regions * dcs_per_region
        rtt = [[0.0] * n_sites for _ in range(n_sites)]
        for a in range(n_sites):
            for b in range(n_sites):
                if a == b:
                    rtt[a][b] = LAN_RTT_MS
                elif a // dcs_per_region == b // dcs_per_region:
                    rtt[a][b] = DISTRIBUTED_INTRA_REGION_RTT_MS
                else:
                    rtt[a][b] = DISTRIBUTED_CROSS_REGION_RTT_MS
        site_of: Dict[int, int] = {}
        for gid in range(config.n_groups):
            for idx, pid in enumerate(config.members(gid)):
                site_of[pid] = gid * dcs_per_region + idx
        return SiteMatrixLatency(site_of, rtt, stddev_frac=0.05)


def lan_scenario(n_groups: int = 8, group_size: int = 3) -> Scenario:
    """Table 2, row 1: everything inside one cluster."""
    return Scenario(
        name="LAN",
        description=f"{n_groups} groups deployed inside a cluster.",
        n_groups=n_groups,
        group_size=group_size,
        cross_group_rtt_ms=LAN_RTT_MS,
        intra_group_rtt_ms=f"{LAN_RTT_MS}ms",
        _latency_builder=_LanLatency(),
        # In a LAN, synchronized clocks are far tighter than 2ms; the
        # convoy window is tiny anyway (§7.3).
        epsilon_ms=0.005,
    )


def lan_sustained(n_groups: int = 2, group_size: int = 3) -> Scenario:
    """LAN geometry sized for sustained steady-state runs.

    Same latency model and skew bound as :func:`lan_scenario`, but
    defaulting to a small 2×3 deployment: steady-state memory
    experiments run roughly 10× longer than a figure load point, and the
    interesting quantity — per-process state growth vs the state-GC
    watermark — is independent of group count."""
    return Scenario(
        name="LAN - sustained",
        description=f"{n_groups} groups inside a cluster, sized for "
        "long steady-state (memory/GC) runs.",
        n_groups=n_groups,
        group_size=group_size,
        cross_group_rtt_ms=LAN_RTT_MS,
        intra_group_rtt_ms=f"{LAN_RTT_MS}ms",
        _latency_builder=_LanLatency(),
        epsilon_ms=0.005,
    )


def lan_fleet(n_groups: int = 20, group_size: int = 3) -> Scenario:
    """LAN geometry scaled past the paper: a 20-group, 60-process fleet.

    Same cluster latency model as :func:`lan_scenario`, defaulting to
    20×3 — the scale-out target of the campaign-orchestration work.
    Genuineness keeps per-message cost proportional to the destination
    set, so a fleet this wide is mostly independent 2–3 group traffic;
    the scenario exists to exercise (and benchmark) the harness at
    60+ simulated processes, beyond the paper's 24."""
    return Scenario(
        name="LAN - fleet",
        description=f"{n_groups} groups inside a cluster ({n_groups * group_size} "
        "processes), the scale-out orchestration target.",
        n_groups=n_groups,
        group_size=group_size,
        cross_group_rtt_ms=LAN_RTT_MS,
        intra_group_rtt_ms=f"{LAN_RTT_MS}ms",
        _latency_builder=_LanLatency(),
        epsilon_ms=0.005,
    )


def wan_colocated_leaders(n_groups: int = 8, group_size: int = 3) -> Scenario:
    """Table 2, row 2: 3 regions, leaders share a region."""
    return Scenario(
        name="WAN - colocated leaders",
        description=f"3 regions, each of the {n_groups} groups deployed across them.",
        n_groups=n_groups,
        group_size=group_size,
        cross_group_rtt_ms=LAN_RTT_MS,
        intra_group_rtt_ms="60ms, 76ms, 130ms",
        _latency_builder=_ColocatedLatency(),
        epsilon_ms=DEFAULT_EPSILON_MS,
    )


def wan_distributed_leaders(n_groups: int = 8, group_size: int = 3) -> Scenario:
    """Table 2, row 3: 8 regions, one group per region."""
    return Scenario(
        name="WAN - distributed leaders",
        description=f"{n_groups} regions, each with {group_size} datacenters. "
        "Each group deployed in its own region.",
        n_groups=n_groups,
        group_size=group_size,
        cross_group_rtt_ms=DISTRIBUTED_CROSS_REGION_RTT_MS,
        intra_group_rtt_ms=f"{DISTRIBUTED_INTRA_REGION_RTT_MS}ms",
        _latency_builder=_DistributedLatency(),
        epsilon_ms=DEFAULT_EPSILON_MS,
    )


def all_scenarios() -> List[Scenario]:
    """The three Table 2 scenarios at paper scale (8 groups × 3)."""
    return [lan_scenario(), wan_colocated_leaders(), wan_distributed_leaders()]
