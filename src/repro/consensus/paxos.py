"""Single-decree Paxos.

Consensus substrate used by the FastCast baseline (which, per §4.1, runs
"two sequential rounds of consensus" inside each destination group) and
available as a standalone building block. The implementation is the
classic two-phase protocol with all three roles colocated on every group
member:

* Phase 1 (prepare/promise) establishes a ballot.
* Phase 2 (accept/accepted) chooses a value; accepted messages go to
  **all** members, so every member learns the decision one step after the
  accept — the "2b all-to-all" pattern whose message count appears in the
  paper's Table 1 complexity row for FastCast.

Ballots are ``(round, pid)`` pairs, totally ordered, so competing
proposers never collide on a ballot number.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

Ballot = Tuple[int, int]


class Prepare:
    """Phase 1a."""

    __slots__ = ("instance", "ballot")
    kind = "paxos-1a"

    def __init__(self, instance: Any, ballot: Ballot):
        self.instance = instance
        self.ballot = ballot


class Promise:
    """Phase 1b: carries the highest accepted (ballot, value) if any."""

    __slots__ = ("instance", "ballot", "accepted_ballot", "accepted_value")
    kind = "paxos-1b"

    def __init__(
        self,
        instance: Any,
        ballot: Ballot,
        accepted_ballot: Optional[Ballot],
        accepted_value: Any,
    ):
        self.instance = instance
        self.ballot = ballot
        self.accepted_ballot = accepted_ballot
        self.accepted_value = accepted_value


class Accept:
    """Phase 2a."""

    __slots__ = ("instance", "ballot", "value")
    kind = "paxos-2a"

    def __init__(self, instance: Any, ballot: Ballot, value: Any):
        self.instance = instance
        self.ballot = ballot
        self.value = value


class Accepted:
    """Phase 2b, sent to all members (everyone learns in one step)."""

    __slots__ = ("instance", "ballot", "value")
    kind = "paxos-2b"

    def __init__(self, instance: Any, ballot: Ballot, value: Any):
        self.instance = instance
        self.ballot = ballot
        self.value = value


PAXOS_KINDS = ("paxos-1a", "paxos-1b", "paxos-2a", "paxos-2b")


class _InstanceState:
    __slots__ = (
        "promised",
        "accepted_ballot",
        "accepted_value",
        "decided",
        "decided_value",
        "promises",
        "accepteds",
        "proposal",
        "my_ballot",
    )

    def __init__(self) -> None:
        self.promised: Optional[Ballot] = None
        self.accepted_ballot: Optional[Ballot] = None
        self.accepted_value: Any = None
        self.decided = False
        self.decided_value: Any = None
        self.promises: Dict[int, Promise] = {}
        self.accepteds: Dict[Ballot, Dict[int, Any]] = {}
        self.proposal: Any = None
        self.my_ballot: Optional[Ballot] = None


class PaxosNode:
    """One group member running (possibly many instances of) Paxos.

    The node is transport-agnostic: the owner supplies ``send_fn(pids,
    msg)`` and receives decisions through ``on_decide(instance, value)``.

    Args:
        pid: this member's process id.
        members: all group member pids.
        quorum_size: quorum size (majority by default when ``None``).
        send_fn: callable used to multicast consensus messages.
        on_decide: callback fired exactly once per decided instance.
        skip_phase1: treat the proposer as a stable leader and go straight
            to phase 2 with ballot ``(0, pid)`` — the steady-state
            optimization every multi-Paxos deployment uses, and the mode
            FastCast runs in under stable leaders.
    """

    def __init__(
        self,
        pid: int,
        members: List[int],
        send_fn: Callable[[List[int], Any], None],
        on_decide: Callable[[Any, Any], None],
        quorum_size: Optional[int] = None,
        skip_phase1: bool = True,
    ):
        self.pid = pid
        self.members = list(members)
        self.quorum_size = quorum_size or (len(members) // 2 + 1)
        self.send_fn = send_fn
        self.on_decide = on_decide
        self.skip_phase1 = skip_phase1
        self._instances: Dict[Any, _InstanceState] = {}

    def _state(self, instance: Any) -> _InstanceState:
        state = self._instances.get(instance)
        if state is None:
            state = _InstanceState()
            self._instances[instance] = state
        return state

    def is_decided(self, instance: Any) -> bool:
        """Whether this node has learned a decision for ``instance``."""
        return self._state(instance).decided

    def decided_value(self, instance: Any) -> Any:
        """The learned decision (``None`` if not decided)."""
        return self._state(instance).decided_value

    # ------------------------------------------------------------------
    # proposer
    # ------------------------------------------------------------------

    def propose(self, instance: Any, value: Any, round_number: int = 0) -> None:
        """Propose ``value`` for ``instance``.

        With ``skip_phase1`` and round 0, goes straight to phase 2.
        """
        state = self._state(instance)
        if state.decided:
            return
        state.proposal = value
        ballot = (round_number, self.pid)
        state.my_ballot = ballot
        if self.skip_phase1 and round_number == 0:
            self.send_fn(self.members, Accept(instance, ballot, value))
        else:
            self.send_fn(self.members, Prepare(instance, ballot))

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def handle(self, src: int, msg: Any) -> bool:
        """Process a consensus message; returns False if not one."""
        if isinstance(msg, Prepare):
            self._on_prepare(src, msg)
        elif isinstance(msg, Promise):
            self._on_promise(src, msg)
        elif isinstance(msg, Accept):
            self._on_accept(src, msg)
        elif isinstance(msg, Accepted):
            self._on_accepted(src, msg)
        else:
            return False
        return True

    def _on_prepare(self, src: int, msg: Prepare) -> None:
        state = self._state(msg.instance)
        if state.promised is None or msg.ballot > state.promised:
            state.promised = msg.ballot
            reply = Promise(
                msg.instance, msg.ballot, state.accepted_ballot, state.accepted_value
            )
            self.send_fn([src], reply)

    def _on_promise(self, src: int, msg: Promise) -> None:
        state = self._state(msg.instance)
        if state.decided or msg.ballot != state.my_ballot:
            return
        state.promises[src] = msg
        if len(state.promises) < self.quorum_size:
            return
        # Choose the value of the highest accepted ballot, else our own.
        best: Optional[Promise] = None
        for promise in state.promises.values():
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > best.accepted_ballot:
                best = promise
        value = best.accepted_value if best is not None else state.proposal
        state.promises.clear()
        self.send_fn(self.members, Accept(msg.instance, msg.ballot, value))

    def _on_accept(self, src: int, msg: Accept) -> None:
        state = self._state(msg.instance)
        if state.promised is not None and msg.ballot < state.promised:
            return
        state.promised = msg.ballot
        state.accepted_ballot = msg.ballot
        state.accepted_value = msg.value
        self.send_fn(self.members, Accepted(msg.instance, msg.ballot, msg.value))

    def _on_accepted(self, src: int, msg: Accepted) -> None:
        state = self._state(msg.instance)
        if state.decided:
            return
        votes = state.accepteds.setdefault(msg.ballot, {})
        votes[src] = msg.value
        if len(votes) >= self.quorum_size:
            state.decided = True
            state.decided_value = msg.value
            state.accepteds.clear()
            self.on_decide(msg.instance, msg.value)
