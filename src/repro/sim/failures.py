"""Failure injection.

The model (§2.1) allows crash failures only: a faulty process stops
taking steps and never recovers. Quorum assumptions require that at least
one quorum per group contains no faulty process; the helpers here keep
injected failures within that budget unless explicitly overridden.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

from .events import Scheduler
from .process import SimProcess


class FailureInjector:
    """Schedules crashes against a set of processes.

    Args:
        scheduler: shared event scheduler.
        processes: pid → process map (e.g. ``network.processes``).
    """

    def __init__(self, scheduler: Scheduler, processes: Dict[int, SimProcess]):
        self.scheduler = scheduler
        self.processes = processes
        self.crashed_pids: List[int] = []

    def crash_at(self, pid: int, time_ms: float) -> None:
        """Crash ``pid`` at absolute simulated time ``time_ms``."""
        if pid not in self.processes:
            raise KeyError(f"unknown pid {pid}")
        self.scheduler.call_at(time_ms, self._crash_now, pid)

    def _crash_now(self, pid: int) -> None:
        proc = self.processes[pid]
        if not proc.crashed:
            proc.crash()
            self.crashed_pids.append(pid)

    def crash_random(
        self,
        candidates: Sequence[int],
        time_ms: float,
        rng: random.Random,
    ) -> int:
        """Crash one process chosen uniformly from ``candidates``."""
        pid = rng.choice(list(candidates))
        self.crash_at(pid, time_ms)
        return pid


def max_failures(group_size: int) -> int:
    """Crash budget for a majority-quorum group of ``group_size``.

    With quorums of size ``floor(n/2) + 1``, up to ``ceil(n/2) - 1``
    processes may fail while one all-correct quorum remains.
    """
    if group_size < 1:
        raise ValueError("group size must be positive")
    return (group_size - 1) // 2
