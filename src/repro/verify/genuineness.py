"""Genuineness checker (§2.2).

A multicast protocol is *genuine* when only the sender and the
destinations of a message take steps to order it. We verify this
empirically: a network trace hook records, for every wire message that
carries a multicast id, its endpoints; the checker then asserts both
endpoints belong to ``dest(m) ∪ {origin(m)}``.

Messages without a ``mid`` (PrimCast's ``bump``, epoch-change traffic)
are intra-group housekeeping: senders and receivers are in one group, and
the checker separately asserts they never cross group boundaries — a
process only emits them while acting as a destination (or during leader
change, which involves no third-party group either).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.config import GroupConfig
from ..core.messages import MessageId
from .properties import PropertyViolation


class GenuinenessTracer:
    """Network trace hook recording endpoints per multicast id."""

    def __init__(self, config: GroupConfig) -> None:
        self.config = config
        # mid -> set of (src, dst)
        self.endpoints: Dict[MessageId, Set[Tuple[int, int]]] = {}
        # endpoints of mid-less messages
        self.anonymous: List[Tuple[int, int, str]] = []

    def __call__(self, src: int, dst: int, msg: object, depart: float) -> None:
        mid: Optional[MessageId] = getattr(msg, "mid", None)
        if mid is not None:
            self.endpoints.setdefault(mid, set()).add((src, dst))
        else:
            kind = getattr(msg, "kind", type(msg).__name__)
            self.anonymous.append((src, dst, kind))

    def check(self, dest_pids_of: Dict[MessageId, Set[int]], origin_of: Dict[MessageId, int]) -> None:
        """Assert genuineness for every traced multicast."""
        for mid, pairs in self.endpoints.items():
            allowed = set(dest_pids_of[mid]) | {origin_of[mid]}
            for src, dst in pairs:
                if src not in allowed or dst not in allowed:
                    raise PropertyViolation(
                        f"non-genuine traffic for {mid}: {src} -> {dst} "
                        f"(allowed: {sorted(allowed)})"
                    )
        group_of = self.config.group_of
        for src, dst, kind in self.anonymous:
            if group_of.get(src) != group_of.get(dst):
                raise PropertyViolation(
                    f"cross-group housekeeping message {kind}: {src} -> {dst}"
                )
