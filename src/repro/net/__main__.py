"""CLI for the net backend: ``python -m repro.net <command>``.

* ``node`` — run ONE protocol process (spawned by the launcher; not
  normally invoked by hand).
* ``cluster`` — launch a full localhost cluster and report it.
* ``diff`` — launch a cluster, run the sim reference on the same
  workload, and fail (exit 1) on any delivery disagreement. This is
  the CI ``net-smoke`` entry point; ``--kill`` adds mid-run crash
  injection (the survivors must elect a new leader and still agree
  with the failure-free reference).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .cluster import ClusterSpec, launch_cluster
from .differential import diff_cluster_result
from .host import Topology, run_node


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--groups", type=int, default=2)
    parser.add_argument("--group-size", type=int, default=3)
    parser.add_argument("--messages", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--extra-group-p", type=float, default=0.5)
    parser.add_argument(
        "--kill", type=int, default=None, metavar="PID",
        help="SIGKILL this pid mid-run (not the driver)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=4, metavar="N",
        help="kill once the driver has delivered N messages",
    )
    parser.add_argument("--suspect-ms", type=float, default=500.0)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--rundir", type=str, default=None)


def _spec_from_args(args: argparse.Namespace) -> ClusterSpec:
    return ClusterSpec(
        n_groups=args.groups,
        group_size=args.group_size,
        n_messages=args.messages,
        seed=args.seed,
        extra_group_p=args.extra_group_p,
        kill_pid=args.kill,
        kill_after=args.kill_after,
        suspect_ms=args.suspect_ms,
        run_timeout_s=args.timeout,
    )


def _rundir_from_args(args: argparse.Namespace) -> Path:
    if args.rundir:
        path = Path(args.rundir)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return Path(tempfile.mkdtemp(prefix="repro-net-"))


def cmd_node(args: argparse.Namespace) -> int:
    topology = Topology.from_json(json.loads(Path(args.topology).read_text()))
    return run_node(topology, args.pid, Path(args.rundir))


def cmd_cluster(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    rundir = _rundir_from_args(args)
    result = launch_cluster(spec, rundir)
    for pid in sorted(result.outcomes):
        o = result.outcomes[pid]
        status = "KILLED" if o.killed else f"exit={o.exit_code}"
        print(
            f"node {pid}: {status} delivered={len(o.delivered)}"
            + (f" expected={o.summary['expected']}" if o.summary else "")
        )
    print(f"cluster {'OK' if result.ok else 'FAILED'} in {result.wall_s:.1f}s "
          f"(rundir: {rundir})")
    return 0 if result.ok else 1


def cmd_diff(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    rundir = _rundir_from_args(args)
    result = launch_cluster(spec, rundir)
    if not result.ok:
        print(f"cluster run FAILED (rundir: {rundir})")
        for pid in sorted(result.outcomes):
            o = result.outcomes[pid]
            status = "KILLED" if o.killed else f"exit={o.exit_code}"
            print(f"  node {pid}: {status} delivered={len(o.delivered)}")
        return 1
    problems = diff_cluster_result(result)
    if problems:
        print(f"differential check FAILED (rundir: {rundir}):")
        for p in problems:
            print(f"  {p}")
        return 1
    survivors = result.survivors
    n_msgs = spec.n_messages
    kill_note = (
        f", survived kill of pid {spec.kill_pid}" if spec.kill_pid is not None else ""
    )
    print(
        f"differential check OK: {len(survivors)} nodes agree with the sim "
        f"reference on {n_msgs} messages{kill_note} ({result.wall_s:.1f}s)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.net")
    sub = parser.add_subparsers(dest="command", required=True)

    np = sub.add_parser("node", help="run one protocol process (launcher use)")
    np.add_argument("--topology", required=True)
    np.add_argument("--pid", type=int, required=True)
    np.add_argument("--rundir", required=True)
    np.set_defaults(fn=cmd_node)

    cp = sub.add_parser("cluster", help="launch a localhost cluster")
    _add_spec_args(cp)
    cp.set_defaults(fn=cmd_cluster)

    dp = sub.add_parser("diff", help="cluster run + sim differential check")
    _add_spec_args(dp)
    dp.set_defaults(fn=cmd_diff)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":
    sys.exit(main())
