"""Unit tests for the property checkers themselves (positive + negative)."""

import pytest

from repro.verify.properties import (
    PropertyViolation,
    check_acyclic_order,
    check_all,
    check_integrity,
    check_prefix_order,
    check_timestamp_order,
    check_uniform_agreement,
    collect_violations,
)

A, B, C = ("a", 1), ("b", 1), ("c", 1)


def log(*entries):
    return [(mid, ts, float(i)) for i, (mid, ts) in enumerate(entries)]


class TestIntegrity:
    def test_ok(self):
        check_integrity({0: log((A, 1), (B, 2))}, {A, B})

    def test_duplicate_delivery_caught(self):
        with pytest.raises(PropertyViolation, match="twice"):
            check_integrity({0: log((A, 1), (A, 1))}, {A})

    def test_phantom_message_caught(self):
        with pytest.raises(PropertyViolation, match="never"):
            check_integrity({0: log((A, 1))}, set())


class TestUniformAgreement:
    def test_ok_when_all_correct_dests_deliver(self):
        logs = {0: log((A, 1)), 1: log((A, 1))}
        check_uniform_agreement(logs, {A: {0, 1}}, {0, 1})

    def test_missing_delivery_caught(self):
        logs = {0: log((A, 1)), 1: []}
        with pytest.raises(PropertyViolation):
            check_uniform_agreement(logs, {A: {0, 1}}, {0, 1})

    def test_crashed_processes_excused(self):
        logs = {0: log((A, 1)), 1: []}
        check_uniform_agreement(logs, {A: {0, 1}}, {0})

    def test_non_destinations_excused(self):
        logs = {0: log((A, 1)), 1: []}
        check_uniform_agreement(logs, {A: {0}}, {0, 1})


class TestAcyclicOrder:
    def test_consistent_orders_pass(self):
        logs = {0: log((A, 1), (B, 2)), 1: log((A, 1), (B, 2), (C, 3))}
        check_acyclic_order(logs)

    def test_two_process_cycle_caught(self):
        logs = {0: log((A, 1), (B, 2)), 1: log((B, 2), (A, 1))}
        with pytest.raises(PropertyViolation, match="cycle"):
            check_acyclic_order(logs)

    def test_three_process_cycle_caught(self):
        # a<b at 0, b<c at 1, c<a at 2: cycle via transitivity.
        logs = {
            0: log((A, 1), (B, 2)),
            1: log((B, 2), (C, 3)),
            2: log((C, 3), (A, 1)),
        }
        with pytest.raises(PropertyViolation, match="cycle"):
            check_acyclic_order(logs)

    def test_disjoint_logs_pass(self):
        logs = {0: log((A, 1)), 1: log((B, 1))}
        check_acyclic_order(logs)

    def test_empty_logs_pass(self):
        check_acyclic_order({0: [], 1: []})


class TestPrefixOrder:
    def test_ok(self):
        logs = {0: log((A, 1), (B, 2)), 1: log((A, 1), (B, 2))}
        check_prefix_order(logs, {A: {0, 1}, B: {0, 1}})

    def test_violation_caught(self):
        # 0 delivered only A, 1 delivered only B; both messages destined
        # to both -> neither saw the other first.
        logs = {0: log((A, 1)), 1: log((B, 2))}
        with pytest.raises(PropertyViolation, match="prefix"):
            check_prefix_order(logs, {A: {0, 1}, B: {0, 1}})

    def test_disjoint_destinations_not_constrained(self):
        logs = {0: log((A, 1)), 1: log((B, 2))}
        check_prefix_order(logs, {A: {0}, B: {1}})


class TestTimestampOrder:
    def test_ok(self):
        check_timestamp_order({0: log((A, 1), (B, 1), (C, 5))})

    def test_decreasing_ts_caught(self):
        with pytest.raises(PropertyViolation):
            check_timestamp_order({0: log((A, 5), (B, 1))})

    def test_tie_must_respect_id_order(self):
        # (b,1) before (a,1): ids out of order at equal ts.
        with pytest.raises(PropertyViolation):
            check_timestamp_order({0: log((B, 1), (A, 1))})

    def test_inconsistent_finals_across_processes_caught(self):
        logs = {0: log((A, 1)), 1: log((A, 2))}
        with pytest.raises(PropertyViolation, match="final"):
            check_timestamp_order(logs)


class TestCollectViolations:
    """collect_violations must agree with check_all exactly."""

    def _args(self, logs, mids, dests, correct):
        return logs, mids, dests, correct

    def test_clean_logs_collect_nothing(self):
        logs = {0: log((A, 1), (B, 2)), 1: log((A, 1), (B, 2))}
        args = (logs, {A, B}, {A: {0, 1}, B: {0, 1}}, {0, 1})
        check_all(*args)  # does not raise
        assert collect_violations(*args) == []

    def test_first_violation_matches_check_all(self):
        # Duplicate delivery: integrity is the first checker in both.
        logs = {0: log((A, 1), (A, 1))}
        args = (logs, {A}, {A: {0}}, {0})
        with pytest.raises(PropertyViolation) as excinfo:
            check_all(*args)
        violations = collect_violations(*args)
        assert violations
        assert violations[0].prop == excinfo.value.prop
        assert violations[0].message == str(excinfo.value)
        assert violations[0].mids == tuple(excinfo.value.mids)

    def test_collects_multiple_properties(self):
        # Cyclic order also breaks timestamp consistency across logs.
        logs = {0: log((A, 1), (B, 2)), 1: log((B, 1), (A, 2))}
        args = (logs, {A, B}, {A: {0, 1}, B: {0, 1}}, {0, 1})
        violations = collect_violations(*args)
        props = [v.prop for v in violations]
        assert "acyclic-order" in props
        assert len(props) == len(set(props)), "one violation per property"

    def test_structured_fields_are_populated(self):
        logs = {0: log((A, 1), (A, 1))}
        violations = collect_violations(logs, {A}, {A: {0}}, {0})
        v = violations[0]
        assert v.prop == "integrity"
        assert A in v.mids
        d = v.to_dict()
        assert d["prop"] == "integrity"
        assert d["mids"] == [list(mid) for mid in v.mids]

    def test_prefix_flag_respected(self):
        logs = {0: log((A, 1)), 1: log((B, 1))}
        dests = {A: {0, 1}, B: {0, 1}}
        # Uniform agreement fails either way; prefix order only when on.
        with_prefix = {v.prop for v in collect_violations(logs, {A, B}, dests, {0, 1})}
        without = {
            v.prop
            for v in collect_violations(logs, {A, B}, dests, {0, 1}, prefix=False)
        }
        assert "prefix-order" in with_prefix
        assert "prefix-order" not in without

    def test_empty_means_check_all_passes(self):
        logs = {0: log((A, 1)), 1: log((A, 1))}
        args = (logs, {A}, {A: {0, 1}}, {0, 1})
        assert collect_violations(*args) == []
        check_all(*args)
