"""Timestamp preservation across primary changes (Algorithm 3, line 79).

After an epoch change, the new primary re-sends the acks for every tuple
in the inherited T with the *original* epoch and timestamp, so quorums
formed partially under the old primary complete consistently.
"""

import pytest

from repro.core import PrimCastProcess, uniform_groups
from repro.core.epoch import Epoch
from repro.election.omega import make_oracles
from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng


def build(poll=5.0):
    config = uniform_groups(2, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(10, "fts"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids
    }
    oracles = make_oracles(config.groups, procs, sched, poll)
    for pid, p in procs.items():
        p.omega = oracles[config.group_of[pid]]
        p.omega.subscribe(p._on_omega_output)
    inj = FailureInjector(sched, procs)
    logs = {pid: [] for pid in procs}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: logs[proc.pid].append((m.mid, ts))
        )
    return config, sched, procs, inj, logs


def test_inherited_tuples_keep_original_epoch_and_ts():
    config, sched, procs, inj, logs = build()
    # Propose a batch, then crash the primary after its acks left but
    # before delivery completes at the remote group.
    mids = []
    for i in range(5):
        sched.call_at(i * 0.1, lambda: mids.append(procs[4].a_multicast({0, 1}).mid))
    inj.crash_at(0, 1.3)  # after the proposals were acked out
    sched.run(until=400)

    new_primary = procs[1]
    assert new_primary.e_cur.number >= 1
    # Messages the dead primary proposed keep their epoch-0 tuples in
    # the inherited T; messages it never got to propose are re-proposed
    # under the new primary's epoch. No other epochs appear.
    old_epoch = Epoch(0, 0)
    epochs = [e for e, m, ts in new_primary.t_list if m.mid in set(mids)]
    assert len(epochs) == len(mids)
    assert set(epochs) <= {old_epoch, new_primary.e_cur}
    assert old_epoch in epochs, "no tuple was inherited"
    # Inherited tuples appear before re-proposed ones (T order, line 79).
    first_new = min(
        (i for i, e in enumerate(epochs) if e == new_primary.e_cur),
        default=len(epochs),
    )
    assert all(e == old_epoch for e in epochs[:first_new])

    # Deliveries at the surviving members agree on final timestamps.
    finals = {}
    for pid in (1, 2, 3, 4, 5):
        for mid, ts in logs[pid]:
            assert finals.setdefault(mid, ts) == ts
    assert set(finals) == set(mids)


def test_resent_acks_complete_old_quorums():
    """A follower that saw only the dead primary's ack still decides the
    same local timestamp once survivors re-send theirs."""
    config, sched, procs, inj, logs = build()
    m = procs[4].a_multicast({0, 1})
    inj.crash_at(0, 1.4)
    sched.run(until=400)
    # All survivors decided local-ts(m, g0) = 1 (the dead primary's
    # proposal), not a re-proposed value.
    for pid in (1, 2, 3, 4, 5):
        assert procs[pid].local_ts(m.mid, 0) == 1, f"pid {pid}"


def test_unproposed_message_reproposed_in_new_epoch():
    """A message the old primary never proposed gets a fresh proposal
    from the new primary, in the new epoch."""
    config, sched, procs, inj, logs = build()
    inj.crash_at(0, 0.5)  # dies before the start arrives
    m = procs[4].a_multicast({0, 1})
    sched.run(until=400)
    new_primary = procs[1]
    epoch, ts = new_primary.t_by_mid[m.mid]
    assert epoch.leader == 1
    assert epoch.number >= 1
    for pid in (1, 2, 3, 4, 5):
        assert m.mid in {x[0] for x in logs[pid]}
