"""Tests for the Table 1 analytic model and step measurements."""

import pytest

from repro.harness.analytic import (
    LATENCY_PROFILES,
    exact_message_count,
    hybrid_clock_failure_free_ms,
    message_complexity,
    table1_rows,
)
from repro.harness.steps import measure_collision_free, measure_primcast_convoy


class TestLatencyProfiles:
    def test_paper_table1_step_counts(self):
        assert LATENCY_PROFILES["fastcast"].collision_free == 4
        assert LATENCY_PROFILES["fastcast"].failure_free == 8
        assert LATENCY_PROFILES["whitebox"].collision_free == 4
        assert LATENCY_PROFILES["whitebox"].failure_free == 6
        assert LATENCY_PROFILES["whitebox-leaders"].collision_free == 3
        assert LATENCY_PROFILES["whitebox-leaders"].failure_free == 5
        assert LATENCY_PROFILES["primcast"].collision_free == 3
        assert LATENCY_PROFILES["primcast"].failure_free == 5

    def test_failure_free_is_c_plus_d(self):
        for p in LATENCY_PROFILES.values():
            assert p.failure_free == p.clock_update_latency + p.commit_latency


class TestMessageComplexity:
    @pytest.mark.parametrize("k,n", [(1, 3), (2, 3), (4, 3), (8, 3), (2, 5)])
    def test_formulas_match_table1_closed_forms(self, k, n):
        assert (
            message_complexity("fastcast", k, n)["total"]
            == k * (2 * k * n + 3 * n + 2 * n * n)
        )
        assert message_complexity("whitebox", k, n)["total"] == k * (1 + 2 * k * n + n)
        assert (
            message_complexity("primcast", k, n)["total"]
            == k * (k * n + k * n * n + n + n * n)
        )

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            message_complexity("zab", 2, 3)
        with pytest.raises(ValueError):
            message_complexity("primcast", 0, 3)

    def test_exact_counts_at_most_paper_formulas(self):
        """The paper approximates followers as n; exact counts are <=."""
        for proto in ("fastcast", "whitebox", "primcast"):
            for k in (1, 2, 4):
                exact = exact_message_count(proto, k, 3)["total"]
                paper = message_complexity(proto, k, 3)["total"]
                assert exact <= paper


class TestHybridClockBound:
    def test_small_epsilon_saves_a_step(self):
        assert hybrid_clock_failure_free_ms(10.0, 1.0) == pytest.approx(42.0)

    def test_large_epsilon_capped_at_5_delta(self):
        assert hybrid_clock_failure_free_ms(10.0, 100.0) == pytest.approx(50.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hybrid_clock_failure_free_ms(-1, 0)


class TestMeasuredSteps:
    """Empirical side of Table 1 on an exact-step network."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_primcast_three_steps(self, k):
        r = measure_collision_free("primcast", k, n_groups=4)
        assert r["max_steps"] == pytest.approx(3.0, abs=1e-6)
        assert not r["missing"]

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_whitebox_three_at_leaders_four_at_followers(self, k):
        r = measure_collision_free("whitebox", k, n_groups=4)
        assert r["max_leader_steps"] == pytest.approx(3.0, abs=1e-6)
        assert r["max_steps"] == pytest.approx(4.0, abs=1e-6)

    @pytest.mark.parametrize("k", [2, 4])
    def test_fastcast_four_steps(self, k):
        r = measure_collision_free("fastcast", k, n_groups=4)
        assert r["max_steps"] == pytest.approx(4.0, abs=1e-6)

    def test_measured_message_counts_close_to_formula(self):
        for proto in ("primcast", "whitebox", "fastcast"):
            r = measure_collision_free(proto, 2, n_groups=4)
            exact = exact_message_count(proto, 2, 3)
            # bumps are an upper bound for primcast; everything else exact
            upper = exact["total"]
            lower = upper - exact.get("bump(max)", 0)
            assert lower <= r["messages"] <= upper, proto

    def test_convoy_measurement_matches_bounds(self):
        plain = measure_primcast_convoy(hybrid=False)
        assert 4.5 < plain["measured_steps"] <= 5.0
        hc = measure_primcast_convoy(hybrid=True, epsilon_ms=1.0)
        assert hc["measured_steps"] <= 4.2 + 0.01


def test_table1_rows_render():
    rows = table1_rows()
    assert len(rows) == 3
    assert rows[0][0] == "FastCast"
    assert "k(" in rows[0][3]
