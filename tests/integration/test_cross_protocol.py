"""Cross-protocol integration tests: same workload, every protocol."""

import pytest

from helpers import MiniSystem, random_workload
from repro.sim.latency import JitteredLatency
from repro.verify import GenuinenessTracer, check_all

PROTOCOLS = ["primcast", "whitebox", "fastcast", "classic"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", [1, 2])
def test_full_property_suite_under_jitter(protocol, seed):
    sys_ = MiniSystem(
        protocol=protocol,
        n_groups=4,
        latency=JitteredLatency(3.0, 0.4),
        seed=seed,
    )
    tracer = GenuinenessTracer(sys_.config)
    sys_.network.add_trace_hook(tracer)
    random_workload(sys_, 60, seed=seed * 100, spread_ms=60)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )
    tracer.check(sys_.dest_pids_of(), {mid: mid[0] for mid in sys_.multicasts})


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_burst_of_conflicting_globals(protocol):
    """Every client multicasts to all groups simultaneously — the
    worst-case conflict pattern (§7, 8-destination workload)."""
    sys_ = MiniSystem(protocol=protocol, n_groups=3)
    all_groups = {0, 1, 2}
    for pid in sys_.config.all_pids:
        sys_.multicast(pid, all_groups)
    sys_.run_to_quiescence()
    # Atomic broadcast: all processes deliver all messages in ONE order.
    orders = {tuple(mid for mid, _, _ in log) for log in sys_.logs.values()}
    assert len(orders) == 1
    assert len(next(iter(orders))) == 9


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_pipeline_sequential_from_one_sender(protocol):
    sys_ = MiniSystem(protocol=protocol, n_groups=2)
    mids = []
    for i in range(10):
        sys_.scheduler.call_at(
            i * 0.5, lambda: mids.append(sys_.processes[1].a_multicast({0, 1}).mid)
        )
    sys_.run_to_quiescence()
    for pid in range(6):
        assert [m for m, _, _ in sys_.logs[pid]] == mids


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_disjoint_destinations_proceed_independently(protocol):
    """Genuineness consequence: load on groups {2,3} does not delay a
    message addressed to {0,1}."""
    sys_ = MiniSystem(protocol=protocol, n_groups=4)
    for i in range(20):
        sys_.multicast(8, {2, 3})
    m = sys_.multicast(1, {0, 1})
    sys_.run_to_quiescence()
    times = [t for pid in (0, 1, 2, 3, 4, 5) for mid, _, t in sys_.logs[pid] if mid == m.mid]
    expected = {
        "primcast": 3.0,
        "whitebox": 4.0,
        "fastcast": 4.0,
        "classic": 6.0,
    }[protocol]
    assert max(times) == pytest.approx(expected, abs=1e-6)


def test_primcast_vs_baselines_latency_ordering():
    """PrimCast delivers at the last destination no later than the
    baselines on an identical single-message run."""
    last_delivery = {}
    for protocol in PROTOCOLS:
        sys_ = MiniSystem(protocol=protocol, n_groups=2)
        sys_.multicast(4, {0, 1})
        sys_.run_to_quiescence()
        last_delivery[protocol] = max(
            t for pid in range(6) for _, _, t in sys_.logs[pid]
        )
    assert last_delivery["primcast"] < last_delivery["whitebox"]
    assert last_delivery["primcast"] < last_delivery["fastcast"]
    assert last_delivery["fastcast"] < last_delivery["classic"]
