"""Differential tests: incremental predicates vs the literal Algorithm 1.

A :class:`SpecRecorder` mirrors every r-delivered tuple of selected
processes into a literal M set; after random executions we assert the
process's incremental trackers (AckTracker, ClockTracker, final-ts cache)
computed exactly the values the paper's scan-based definitions give.
"""

import random

import pytest

from helpers import MiniSystem, random_workload
from repro.core.spec import attach_spec_recorder
from repro.sim.latency import JitteredLatency


def _attach_all(sys_):
    return {pid: attach_spec_recorder(p) for pid, p in sys_.processes.items()}


def _assert_equivalent(sys_, recorders):
    config = sys_.config
    for pid, proc in sys_.processes.items():
        rec = recorders[pid]
        # min-clock for every group member
        for q in config.members(proc.gid):
            assert proc.min_clock(q) == rec.min_clock(config, proc.e_cur, q), (
                f"min-clock({q}) mismatch at {pid}"
            )
        # quorum-clock
        assert proc.quorum_clock() == rec.quorum_clock(config, proc.e_cur), (
            f"quorum-clock mismatch at {pid}"
        )
        # local-ts and final-ts for every message the process knows
        for mid, m in list(proc.started.items()):
            for gid in m.dest:
                assert proc.local_ts(mid, gid) == rec.local_ts(config, mid, gid), (
                    f"local-ts({mid},{gid}) mismatch at {pid}"
                )
            assert proc.final_ts(mid) == rec.final_ts(config, mid), (
                f"final-ts({mid}) mismatch at {pid}"
            )
        # min-ts for pending messages
        for mid in proc.pending:
            assert proc.min_ts(mid) == rec.min_ts(config, proc.e_cur, mid), (
                f"min-ts({mid}) mismatch at {pid}"
            )


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_predicates_match_spec_on_random_runs(seed):
    sys_ = MiniSystem(n_groups=3, group_size=3)
    recorders = _attach_all(sys_)
    random_workload(sys_, 30, seed=seed, spread_ms=20)
    # Compare at several intermediate points and at quiescence.
    for checkpoint in (5.0, 12.0, 21.0, 35.0):
        sys_.run(until=checkpoint)
        _assert_equivalent(sys_, recorders)
    sys_.run_to_quiescence()
    _assert_equivalent(sys_, recorders)


@pytest.mark.parametrize("seed", [7, 8])
def test_predicates_match_spec_with_jitter(seed):
    sys_ = MiniSystem(
        n_groups=2, group_size=5, latency=JitteredLatency(2.0, 0.3), seed=seed
    )
    recorders = _attach_all(sys_)
    random_workload(sys_, 40, seed=seed, spread_ms=15)
    sys_.run(until=9.0)
    _assert_equivalent(sys_, recorders)
    sys_.run_to_quiescence()
    _assert_equivalent(sys_, recorders)


def test_spec_local_ts_requires_single_epoch_quorum():
    """Acks for the same message from different epochs must not be
    combined into one quorum (Algorithm 1, line 10)."""
    sys_ = MiniSystem(n_groups=2)
    rec = attach_spec_recorder(sys_.processes[0])
    from repro.core.epoch import Epoch
    from repro.core.messages import Ack, Multicast

    m = Multicast((9, 0), frozenset({0}))
    rec.record(1, Ack(m, 0, Epoch(0, 0), 3, 1))
    rec.record(2, Ack(m, 0, Epoch(1, 2), 3, 2))
    assert rec.local_ts(sys_.config, (9, 0), 0) is None
    rec.record(1, Ack(m, 0, Epoch(1, 2), 3, 1))
    assert rec.local_ts(sys_.config, (9, 0), 0) == 3
