"""Unit tests for the per-function effect summaries.

These pin the write-detection shapes the protocol core actually uses
(plain/augmented/item assignment, mutator methods, heapq-style mutating
functions), the transitive closure over self/local calls, and the
memoisation that lets five RACE/EFF rules share one computation.
"""

import ast
import textwrap

from repro.analysis.base import ModuleInfo
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.effects import (
    EMPTY_EFFECTS,
    compute_module_effects,
)


def _effects(source, module="repro.core.fixture"):
    src = textwrap.dedent(source)
    mod = ModuleInfo(
        path="fixture.py", module=module, tree=ast.parse(src), source=src
    )
    return compute_module_effects(mod, DEFAULT_CONFIG)


def test_direct_write_shapes():
    mod = _effects(
        """
        class P:
            def m(self):
                self.clock = 1
                self.e_cur += 1
                self.t_by_mid[k] = v
                del self.t_list[:n]
                self.pending.add(x)
                heapq.heappush(self._min_heap, (ts, mid))
                (self.a, self.b) = (1, 2)
        """
    )
    eff = mod.functions["P.m"].effects
    assert eff.writes == {
        "clock",
        "e_cur",
        "t_by_mid",
        "t_list",
        "pending",
        "_min_heap",
        "a",
        "b",
    }
    assert not eff.sends and not eff.awaits


def test_reads_are_self_attribute_loads():
    mod = _effects(
        """
        class P:
            def m(self):
                x = self.clock + self.e_cur
                return x
        """
    )
    eff = mod.functions["P.m"].effects
    assert eff.reads == {"clock", "e_cur"}
    assert eff.writes == frozenset()


def test_foreign_writes_name_the_mutated_attribute():
    mod = _effects(
        """
        class Monitor:
            def poke(self, proc):
                proc.clock = 7
                self.proc.pending.add(x)
        """
    )
    eff = mod.functions["Monitor.poke"].effects
    assert eff.foreign_writes == {"clock", "pending"}
    # Neither counts as a write of *self* state.
    assert eff.writes == frozenset()


def test_emission_and_suspension_flags():
    mod = _effects(
        """
        class P:
            def a(self):
                self.r_multicast(msg, self.group_members)

            async def b(self):
                await self.wait()

            def c(self):
                yield 1
        """
    )
    assert mod.functions["P.a"].effects.sends
    assert mod.functions["P.b"].effects.awaits
    assert mod.functions["P.c"].effects.awaits
    assert not mod.functions["P.a"].effects.awaits


def test_transitive_closure_over_self_calls():
    # The shape from repro.core.process (handler -> stamp -> emit), with
    # neutral names so no link is itself a configured emission call: the
    # handler inherits both the clock write and the send transitively.
    mod = _effects(
        """
        class P:
            def _emit(self, m, e, ts):
                self.r_multicast(m, self.group_members)

            def _stamp(self, m):
                self.clock += 1
                self._emit(m, self.e_cur, self.clock)

            def _on_ack(self, m):
                self._stamp(m)
        """
    )
    direct = mod.functions["P._on_ack"].direct
    assert direct.writes == frozenset() and not direct.sends
    eff = mod.functions["P._on_ack"].effects
    assert "clock" in eff.writes
    assert eff.sends


def test_transitive_closure_over_free_function_calls():
    mod = _effects(
        """
        def helper(proc):
            proc.pending.add(1)

        def top(proc):
            helper(proc)
        """
    )
    assert mod.functions["top"].effects.foreign_writes == {"pending"}


def test_mutual_recursion_reaches_a_fixpoint():
    mod = _effects(
        """
        class P:
            def a(self):
                self.x = 1
                self.b()

            def b(self):
                self.y = 2
                self.a()
        """
    )
    assert mod.functions["P.a"].effects.writes == {"x", "y"}
    assert mod.functions["P.b"].effects.writes == {"x", "y"}


def test_unresolvable_calls_contribute_nothing():
    mod = _effects(
        """
        class P:
            def m(self, other):
                other.mutate_everything()
                imported_helper()
        """
    )
    assert mod.functions["P.m"].effects == EMPTY_EFFECTS.union(
        mod.functions["P.m"].direct
    )
    assert mod.functions["P.m"].effects.writes == frozenset()


def test_nested_scopes_are_opaque():
    mod = _effects(
        """
        class P:
            def m(self):
                def inner():
                    self.clock = 1
                f = lambda: self.pending.add(1)
        """
    )
    # The nested bodies get their own summaries; m itself is clean.
    assert mod.functions["P.m"].effects.writes == frozenset()
    assert mod.functions["P.m.inner"].effects.writes == {"clock"}


def test_method_lookup_is_per_class():
    mod = _effects(
        """
        class A:
            def m(self):
                self.x = 1

        class B:
            def m(self):
                self.y = 2

            def call(self):
                self.m()
        """
    )
    # B.call resolves self.m() to B.m, not A.m.
    assert mod.functions["B.call"].effects.writes == {"y"}
    info = mod.method("A", "m")
    assert info is not None and info.effects.writes == {"x"}


def test_module_effects_are_memoised_per_tree():
    src = textwrap.dedent(
        """
        class P:
            def m(self):
                self.clock = 1
        """
    )
    mod = ModuleInfo(
        path="fixture.py",
        module="repro.core.fixture",
        tree=ast.parse(src),
        source=src,
    )
    first = compute_module_effects(mod, DEFAULT_CONFIG)
    second = compute_module_effects(mod, DEFAULT_CONFIG)
    assert first is second
    # A different tree with identical source is a different computation.
    other = ModuleInfo(
        path="fixture.py",
        module="repro.core.fixture",
        tree=ast.parse(src),
        source=src,
    )
    assert compute_module_effects(other, DEFAULT_CONFIG) is not first
