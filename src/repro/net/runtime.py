"""The backend-agnostic runtime seam between protocol and substrate.

The protocol stack (:mod:`repro.core`, :mod:`repro.rmcast`,
:mod:`repro.election`) never talks to sockets or event loops directly —
every interaction with the outside world goes through exactly two
objects handed to a process at construction time:

* a **scheduler** — ``now`` plus timer scheduling (``call_after`` /
  ``call_at`` / ``schedule``) and the documented allocation-free fast
  path (``_heap`` / ``_seq``, see :class:`SchedulerAPI`);
* a **transport** — ``register`` + ``transmit``.

This module names that implicit seam: :class:`SchedulerAPI` and
:class:`TransportAPI` are structural protocols the discrete-event
classes (:class:`repro.sim.events.Scheduler`,
:class:`repro.sim.network.Network`) already satisfy verbatim, and that
the asyncio backend (:mod:`repro.net.host`) implements with facades
over a real event loop and real TCP connections. A protocol process is
backend-agnostic by construction: the *same* ``PrimCastProcess`` object
runs on either substrate.

:class:`Runtime` bundles one scheduler + transport pair with the
lifecycle operations drivers need (``now`` / ``send`` / ``send_many`` /
``call_after`` / ``run`` / probe hooks). :class:`SimRuntime` is the
simulation adapter — a thin aggregate over an untouched ``Scheduler`` +
``Network`` pair, so the sim path's event schedule is bit-identical to
constructing the two directly (the goldens pin this).

Timer semantics shared by both backends: time is a float in
milliseconds, monotone non-decreasing, starting at 0.0 at runtime
creation. The sim reads it from the event heap; the asyncio backend
derives it from ``time.monotonic()``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

#: Runtime-level probe hooks observe substrate events (connection
#: established, reconnect, peer suspected, node ready, ...) the way
#: process-level probe hooks observe protocol steps:
#: ``hook(event, data)``.
RuntimeProbe = Callable[[str, Any], None]


@runtime_checkable
class TimerHandle(Protocol):
    """What ``call_at``/``call_after`` return: something cancellable."""

    def cancel(self) -> None: ...


@runtime_checkable
class SchedulerAPI(Protocol):
    """Structural contract of the scheduler half of the seam.

    Beyond the timer methods, two implementation attributes are part of
    the *public* contract, because the CPU-queue hot paths in
    :mod:`repro.sim.process` push service events through them without a
    method call (one heap push per protocol event):

    * ``_heap`` — a ``heapq`` list of ``(time, seq, fn, args)`` entries;
      callers may push entries with ``time >= now`` directly.
    * ``_seq`` — the insertion tie-breaker; callers pushing into
      ``_heap`` must consume and increment it.

    Any conforming scheduler must execute heap entries in ``(time,
    seq)`` order, run each callback to completion before the next
    (handler atomicity — the RACE202 standing-proposal contract,
    DESIGN.md §10/§12), and never run a callback concurrently with
    another of the same runtime.
    """

    _heap: List[Tuple[float, int, Any, Any]]
    _seq: int

    @property
    def now(self) -> float: ...

    def schedule(
        self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> None: ...

    def call_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle: ...

    def call_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle: ...


@runtime_checkable
class TransportAPI(Protocol):
    """Structural contract of the transport half of the seam.

    ``transmit`` must preserve per-``(src, dst)`` FIFO order — the
    rmcast watermark dedupe depends on it (the sim gives it via ordered
    channel queues, the net backend via one TCP connection per peer
    pair). ``depart_time`` is advisory: the sim uses it to model CPU
    completion, the net backend ships the frame immediately.
    """

    def register(self, proc: Any) -> None: ...

    def transmit(self, src: int, dst: int, msg: Any, depart_time: float) -> None: ...


@runtime_checkable
class LeaderOracle(Protocol):
    """Structural contract of Ω (§2.1) as the protocol consumes it.

    ``subscribe`` must invoke the callback immediately with the current
    output and again on every change, from scheduler context.
    Satisfied by :class:`repro.election.omega.OmegaOracle` (sim,
    crash-flag polling) and :class:`repro.net.election.HeartbeatOmega`
    (asyncio, heartbeat timeouts).
    """

    leader: int

    def subscribe(self, callback: Callable[[int, int], None]) -> None: ...


@runtime_checkable
class ProcessLike(Protocol):
    """What the sim oracle needs to observe of a process."""

    pid: int
    crashed: bool


class Runtime(ABC):
    """One substrate instance: a scheduler + transport pair plus
    lifecycle helpers.

    Protocol processes still take the two halves separately (their
    constructors predate this seam and the hot paths bind them
    directly); the runtime is the object *drivers* hold — apps, the
    harness and the cluster nodes construct processes from
    ``runtime.scheduler`` / ``runtime.transport`` and drive them through
    ``run`` / ``call_after`` / ``send``.
    """

    #: Backend tag recorded in results ("sim" or "net").
    backend: str = "sim"

    def __init__(self) -> None:
        self.probe_hooks: List[RuntimeProbe] = []

    @property
    @abstractmethod
    def scheduler(self) -> SchedulerAPI:
        """The scheduler half of the seam."""

    @property
    @abstractmethod
    def transport(self) -> TransportAPI:
        """The transport half of the seam."""

    @abstractmethod
    def run(self, until: float) -> float:
        """Advance this runtime until time ``until`` (ms); returns the
        time reached. Sim: drain the event heap. Net: pump the event
        loop for the corresponding wall-clock span."""

    def now(self) -> float:
        """Current time in milliseconds since runtime start."""
        return self.scheduler.now

    def send(self, src: int, dst: int, msg: Any) -> None:
        """Transmit ``msg`` from ``src`` to ``dst`` departing now."""
        self.transport.transmit(src, dst, msg, self.scheduler.now)

    def send_many(self, src: int, dsts: List[int], msg: Any) -> None:
        """Transmit ``msg`` from ``src`` to each destination in order."""
        transmit = self.transport.transmit
        depart = self.scheduler.now
        for dst in dsts:
            transmit(src, dst, msg, depart)

    def call_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Schedule ``fn(*args)`` after ``delay`` ms of runtime time."""
        return self.scheduler.call_after(delay, fn, *args)

    def add_probe_hook(self, hook: RuntimeProbe) -> None:
        """Register ``hook(event, data)`` on substrate events."""
        self.probe_hooks.append(hook)

    def probe(self, event: str, data: Any = None) -> None:
        """Fire every registered probe hook."""
        for hook in self.probe_hooks:
            hook(event, data)


class SimRuntime(Runtime):
    """The simulation adapter: an untouched ``Scheduler`` + ``Network``
    pair behind the :class:`Runtime` surface.

    Pure aggregation — no call interposition, no wrapper objects on the
    event path — so a system built through a ``SimRuntime`` produces the
    exact event schedule of one wired by hand (goldens stay
    bit-identical).
    """

    backend = "sim"

    def __init__(self, scheduler: Any, network: Any) -> None:
        super().__init__()
        self._scheduler = scheduler
        self._network = network

    @classmethod
    def local(
        cls,
        latency: Optional[Any] = None,
        seed: int = 1,
        rng_label: str = "latency",
    ) -> "SimRuntime":
        """Build a fresh simulated substrate (1 ms constant latency by
        default), seeded like the harness does."""
        from ..sim.events import Scheduler
        from ..sim.latency import ConstantLatency
        from ..sim.network import Network
        from ..sim.rng import child_rng

        scheduler = Scheduler()
        network = Network(
            scheduler, latency or ConstantLatency(1.0), child_rng(seed, rng_label)
        )
        return cls(scheduler, network)

    @property
    def scheduler(self) -> SchedulerAPI:
        sched: SchedulerAPI = self._scheduler
        return sched

    @property
    def transport(self) -> TransportAPI:
        net: TransportAPI = self._network
        return net

    @property
    def network(self) -> Any:
        """The concrete :class:`~repro.sim.network.Network` (sim-only
        surface: trace hooks, partitions, message counts)."""
        return self._network

    def run(self, until: float) -> float:
        result: float = self._scheduler.run(until=until)
        return result
