"""Randomized crash-injection fuzzing with invariant monitors attached.

Random workloads run while primaries (and followers) crash at random
times, within each group's quorum budget. After quiescence we assert
the safety properties — integrity, acyclic order, consistent final
timestamps — and agreement among *correct* processes. The invariant
monitors additionally fail fast on any structural violation during the
run.
"""

import random

import pytest

from repro.core import PrimCastProcess, uniform_groups
from repro.election import make_oracles
from repro.sim import (
    ConstantLatency,
    FailureInjector,
    JitteredLatency,
    Network,
    Scheduler,
    child_rng,
    max_failures,
)
from repro.verify import (
    attach_monitors,
    check_acyclic_order,
    check_integrity,
    check_timestamp_order,
    check_uniform_agreement,
)


def run_fuzz(seed: int, n_groups: int = 2, group_size: int = 3, crashes: int = 2):
    rng = random.Random(seed)
    config = uniform_groups(n_groups, group_size)
    sched = Scheduler()
    net = Network(sched, JitteredLatency(1.0, 0.2), child_rng(seed, "fuzz"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids
    }
    monitors = attach_monitors(procs)
    oracles = make_oracles(config.groups, procs, sched, poll_interval_ms=4.0)
    for pid, p in procs.items():
        p.omega = oracles[config.group_of[pid]]
        p.omega.subscribe(p._on_omega_output)
    injector = FailureInjector(sched, procs)

    logs = {pid: [] for pid in procs}
    multicasts = {}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: (
                logs[proc.pid].append((m.mid, ts, sched.now)),
                multicasts.setdefault(m.mid, m),
            )
        )

    # Crash within the quorum budget of each group.
    budget = {g: max_failures(group_size) for g in range(n_groups)}
    crashed = []
    for _ in range(crashes):
        g = rng.randrange(n_groups)
        if budget[g] == 0:
            continue
        budget[g] -= 1
        candidates = [p for p in config.members(g) if p not in crashed]
        victim = rng.choice(candidates)
        crashed.append(victim)
        injector.crash_at(victim, rng.uniform(1.0, 40.0))

    # Random workload; senders that crash mid-run are fine (non-uniform
    # reliable multicast may lose their in-flight messages).
    senders = []
    for i in range(40):
        sender = rng.choice(config.all_pids)
        dest = frozenset(rng.sample(range(n_groups), rng.randint(1, n_groups)))
        when = rng.uniform(0.0, 45.0)
        sched.call_at(when, procs[sender].a_multicast, dest, f"p{i}")
        senders.append((sender, dest, when))

    sched.run(until=3000.0)

    correct = {pid for pid, p in procs.items() if not p.crashed}
    correct_logs = {pid: logs[pid] for pid in correct}
    check_integrity(correct_logs, set(multicasts))
    check_acyclic_order(correct_logs)
    check_timestamp_order(correct_logs)
    dest_pids = {
        mid: set(config.dest_pids(m.dest)) for mid, m in multicasts.items()
    }
    check_uniform_agreement(correct_logs, dest_pids, correct)
    return correct_logs, crashed, monitors


@pytest.mark.parametrize("seed", range(8))
def test_crash_fuzz_two_groups(seed):
    logs, crashed, monitors = run_fuzz(seed)
    assert any(logs.values())


@pytest.mark.parametrize("seed", [100, 101, 102])
def test_crash_fuzz_five_replicas(seed):
    """Groups of 5 tolerate two crashes each."""
    logs, crashed, monitors = run_fuzz(seed, n_groups=2, group_size=5, crashes=4)
    assert any(logs.values())


@pytest.mark.parametrize("seed", [200, 201])
def test_crash_fuzz_three_groups(seed):
    logs, crashed, monitors = run_fuzz(seed, n_groups=3, crashes=3)
    assert any(logs.values())
