"""Determinism & protocol-contract static analysis.

A custom AST lint pass enforcing the repository's reproducibility policy
(see DESIGN.md, "Determinism policy & static analysis"):

* **DET0xx** — no ambient randomness or wall-clock reads on the
  simulated event path; no unsorted set iteration where messages are
  emitted; no ordering by object identity; no float ``==`` on simulated
  timestamps.
* **PROTO1xx** — wire messages declare a class-level ``kind``; dispatch
  tables bind existing handlers in ``__init__``; the Algorithm 1 state
  variables are only mutated where the conformance map allows.

Run it with ``python -m repro.analysis src/repro`` (``--json`` for the
CI artifact). The pass is pure stdlib and is itself part of the tier-1
test suite (``tests/analysis/``): every rule has known-good/known-bad
fixtures and the shipped tree must analyse clean.
"""

from .base import RULES, ContextVisitor, Finding, ModuleInfo, Rule, register
from .config import DEFAULT_CONFIG, AnalysisConfig

# Importing the rule modules populates the registry.
from . import det_rules as _det_rules  # noqa: F401
from . import eff_rules as _eff_rules  # noqa: F401
from . import perf_rules as _perf_rules  # noqa: F401
from . import proto_rules as _proto_rules  # noqa: F401
from . import race_rules as _race_rules  # noqa: F401

from .cli import main
from .engine import AnalysisError, analyze_module, analyze_paths, iter_python_files, load_module
from .markers import pure

__all__ = [
    "AnalysisConfig",
    "AnalysisError",
    "ContextVisitor",
    "DEFAULT_CONFIG",
    "Finding",
    "ModuleInfo",
    "RULES",
    "Rule",
    "analyze_module",
    "analyze_paths",
    "iter_python_files",
    "load_module",
    "main",
    "pure",
    "register",
]
