"""PrimCast — the paper's primary contribution.

Public surface:

* :class:`PrimCastProcess` — one replica, implementing Algorithms 1–3.
* :class:`GroupConfig` / :func:`uniform_groups` — membership + quorums.
* :class:`Multicast` and :data:`MessageId` — application messages.
* :class:`Epoch` — the primary-based protocol's epochs.
* :mod:`repro.core.spec` — literal Algorithm-1 reference predicates.
"""

from .config import GroupConfig, uniform_groups
from .epoch import Epoch, initial_epoch
from .messages import (
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    MessageId,
    Multicast,
    NewEpoch,
    NewState,
    PRIMCAST_KINDS,
    Start,
)
from .process import CANDIDATE, FOLLOWER, PRIMARY, PROMISED, PrimCastProcess
from .state import AckTracker, ClockTracker, SafetyViolationError

__all__ = [
    "PrimCastProcess",
    "GroupConfig",
    "uniform_groups",
    "Multicast",
    "MessageId",
    "Epoch",
    "initial_epoch",
    "Start",
    "Ack",
    "Bump",
    "NewEpoch",
    "EpochPromise",
    "NewState",
    "AcceptEpoch",
    "PRIMCAST_KINDS",
    "PRIMARY",
    "FOLLOWER",
    "CANDIDATE",
    "PROMISED",
    "AckTracker",
    "ClockTracker",
    "SafetyViolationError",
]
