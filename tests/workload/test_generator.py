"""Tests for the closed-loop client workload."""

import random

import pytest

from repro.workload.generator import Client, make_clients
from repro.workload.scenarios import lan_scenario
from repro.harness.runner import build_system
from repro.sim.costs import zero_cost_model


def build(outstanding=4, n_dest=2, n_groups=4, group_size=3):
    scenario = lan_scenario(n_groups=n_groups, group_size=group_size)
    system = build_system("primcast", scenario, cost_model=zero_cost_model())
    rng = random.Random(3)
    clients = make_clients(
        system.replicas, n_dest, n_groups, outstanding, rng
    )
    return system, clients


def test_one_client_per_replica():
    system, clients = build()
    assert len(clients) == len(system.replicas)


def test_window_is_respected():
    system, clients = build(outstanding=5)
    for c in clients:
        c.start()
    system.scheduler.run(until=0.01)  # only the initial issue jobs
    for c in clients:
        assert c.issued == 5
        assert len(c._in_flight) == 5


def test_closed_loop_reissues_on_delivery():
    system, clients = build(outstanding=2)
    clients[0].start()
    system.scheduler.run(until=10.0)
    c = clients[0]
    assert c.completed > 2
    assert c.issued == c.completed + 2


def test_own_group_always_in_destinations():
    system, clients = build(outstanding=1, n_dest=3)
    for c in clients:
        for _ in range(50):
            dest = c._pick_dest()
            assert c.replica.gid in dest
            assert len(dest) == 3


def test_single_destination_is_own_group():
    system, clients = build(n_dest=1)
    for c in clients:
        assert c._pick_dest() == {c.replica.gid}


def test_latency_samples_are_positive_and_complete():
    system, clients = build(outstanding=2)
    for c in clients:
        c.start()
    system.scheduler.run(until=20.0)
    for c in clients:
        assert c.samples
        for pid, when, lat in c.samples:
            assert pid == c.replica.pid
            assert lat > 0

def test_stop_halts_issuing():
    system, clients = build(outstanding=1)
    clients[0].start()
    system.scheduler.run(until=5.0)
    clients[0].stop()
    issued = clients[0].issued
    system.scheduler.run(until=30.0)
    assert clients[0].issued == issued


def test_invalid_parameters_rejected():
    system, clients = build()
    replica = system.replicas[0]
    with pytest.raises(ValueError):
        Client(replica, 0, 4, 1, random.Random(0))
    with pytest.raises(ValueError):
        Client(replica, 9, 4, 1, random.Random(0))
    with pytest.raises(ValueError):
        Client(replica, 2, 4, 0, random.Random(0))


def test_deterministic_with_same_seed():
    s1, c1 = build()
    s2, c2 = build()
    for c in c1 + c2:
        c.start()
    s1.scheduler.run(until=10.0)
    s2.scheduler.run(until=10.0)
    lat1 = [lat for c in c1 for _, _, lat in c.samples]
    lat2 = [lat for c in c2 for _, _, lat in c.samples]
    assert lat1 == lat2
