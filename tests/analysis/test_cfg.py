"""Unit tests for the intra-procedural CFG builder.

Structural assertions are kept property-shaped (edges exist, entries
land in separate blocks, back edges close loops) rather than pinning
exact block ids, so the builder can evolve without rewriting every
test — except where determinism itself is the property under test.
"""

import ast
import textwrap

from repro.analysis.cfg import (
    build_cfg,
    iter_child_expressions,
    iter_functions,
)


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    fns = iter_functions(tree)
    assert fns, "no function in source"
    return build_cfg(fns[0][1])


def _block_of(cfg, pred):
    """The unique block holding an entry matching ``pred``."""
    hits = [
        b
        for b in cfg.blocks.values()
        if any(pred(e) for e in b.entries)
    ]
    assert len(hits) == 1, f"expected one block, got {len(hits)}"
    return hits[0]


def _expr_block(cfg, name):
    """Block holding the expression-statement ``name()``."""
    return _block_of(
        cfg,
        lambda e: isinstance(e, ast.Expr)
        and isinstance(e.value, ast.Call)
        and isinstance(e.value.func, ast.Name)
        and e.value.func.id == name,
    )


def _reachable(cfg, src, dst):
    seen = set()
    stack = [src]
    while stack:
        cur = stack.pop()
        if cur == dst:
            return True
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(cfg.blocks[cur].succs)
    return False


def test_straight_line_single_block():
    cfg = _cfg(
        """
        def f(x):
            a = x + 1
            b = a * 2
            return b
        """
    )
    block = _block_of(cfg, lambda e: isinstance(e, ast.Return))
    # All three statements share one block; it jumps to exit.
    assert len(block.entries) == 3
    assert cfg.exit in block.succs


def test_if_else_branches_and_merge():
    cfg = _cfg(
        """
        def f(x):
            if x:
                then_side()
            else:
                else_side()
            after()
        """
    )
    test_block = _block_of(
        cfg, lambda e: isinstance(e, ast.Name) and e.id == "x"
    )
    then_block = _expr_block(cfg, "then_side")
    else_block = _expr_block(cfg, "else_side")
    after_block = _expr_block(cfg, "after")
    assert then_block.block_id in test_block.succs
    assert else_block.block_id in test_block.succs
    # Both arms merge before after(); the test does not skip to it.
    assert _reachable(cfg, then_block.block_id, after_block.block_id)
    assert _reachable(cfg, else_block.block_id, after_block.block_id)
    assert after_block.block_id not in test_block.succs


def test_if_without_else_has_fallthrough_edge():
    cfg = _cfg(
        """
        def f(x):
            if x:
                then_side()
            after()
        """
    )
    test_block = _block_of(
        cfg, lambda e: isinstance(e, ast.Name) and e.id == "x"
    )
    after_block = _expr_block(cfg, "after")
    # False path: straight from the test to the join block.
    assert after_block.block_id in test_block.succs


def test_while_loop_back_edge_and_exit():
    cfg = _cfg(
        """
        def f(x):
            while x:
                body()
            after()
        """
    )
    header = _block_of(cfg, lambda e: isinstance(e, ast.Name) and e.id == "x")
    body = _expr_block(cfg, "body")
    after = _expr_block(cfg, "after")
    assert body.block_id in header.succs
    assert after.block_id in header.succs
    # Back edge: the body returns to the header.
    assert _reachable(cfg, body.block_id, header.block_id)


def test_while_orelse_runs_on_normal_exit():
    cfg = _cfg(
        """
        def f(x):
            while x:
                body()
            else:
                done()
            after()
        """
    )
    header = _block_of(cfg, lambda e: isinstance(e, ast.Name) and e.id == "x")
    done = _expr_block(cfg, "done")
    after = _expr_block(cfg, "after")
    assert done.block_id in header.succs
    assert _reachable(cfg, done.block_id, after.block_id)


def test_for_header_entry_is_the_for_node():
    cfg = _cfg(
        """
        def f(xs):
            for x in xs:
                body(x)
            after()
        """
    )
    header = _block_of(cfg, lambda e: isinstance(e, ast.For))
    body = _expr_block(cfg, "body")
    after = _expr_block(cfg, "after")
    # Loop entered and skipped from the header; body loops back.
    assert body.block_id in header.succs
    assert after.block_id in header.succs
    assert _reachable(cfg, body.block_id, header.block_id)
    # The header entry exposes target and iter but not the body.
    nodes = iter_child_expressions(header.entries[0])
    assert any(isinstance(n, ast.Name) and n.id == "xs" for n in nodes)
    assert not any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Name)
        and n.func.id == "body"
        for n in nodes
    )


def test_break_jumps_past_the_loop():
    cfg = _cfg(
        """
        def f(xs):
            for x in xs:
                if x:
                    break
                body(x)
            after()
        """
    )
    brk = _block_of(cfg, lambda e: isinstance(e, ast.Break))
    after = _expr_block(cfg, "after")
    assert after.block_id in brk.succs
    # break does not fall through into the rest of the body.
    body = _expr_block(cfg, "body")
    assert body.block_id not in brk.succs


def test_continue_jumps_to_the_header():
    cfg = _cfg(
        """
        def f(xs):
            for x in xs:
                if x:
                    continue
                body(x)
        """
    )
    header = _block_of(cfg, lambda e: isinstance(e, ast.For))
    cont = _block_of(cfg, lambda e: isinstance(e, ast.Continue))
    assert header.block_id in cont.succs


def test_try_except_handler_edges_from_each_statement():
    cfg = _cfg(
        """
        def f():
            try:
                first()
                second()
            except ValueError:
                handler()
            after()
        """
    )
    first = _expr_block(cfg, "first")
    second = _expr_block(cfg, "second")
    handler = _expr_block(cfg, "handler")
    after = _expr_block(cfg, "after")
    # Every try-body statement may transfer to the handler: the handler
    # entry state joins the state after each one.
    assert handler.block_id in first.succs
    assert handler.block_id in second.succs
    assert _reachable(cfg, handler.block_id, after.block_id)
    assert _reachable(cfg, second.block_id, after.block_id)


def test_try_else_only_after_normal_completion():
    cfg = _cfg(
        """
        def f():
            try:
                body()
            except KeyError:
                handler()
            else:
                success()
            after()
        """
    )
    handler = _expr_block(cfg, "handler")
    success = _expr_block(cfg, "success")
    # The handler must not flow into the else branch.
    assert not _reachable(cfg, handler.block_id, success.block_id)
    assert _reachable(cfg, success.block_id, _expr_block(cfg, "after").block_id)


def test_finally_runs_after_the_merge():
    cfg = _cfg(
        """
        def f():
            try:
                body()
            except KeyError:
                handler()
            finally:
                cleanup()
        """
    )
    cleanup = _expr_block(cfg, "cleanup")
    assert _reachable(cfg, _expr_block(cfg, "body").block_id, cleanup.block_id)
    assert _reachable(cfg, _expr_block(cfg, "handler").block_id, cleanup.block_id)


def test_with_items_precede_the_body():
    cfg = _cfg(
        """
        def f():
            with ctx() as c:
                body(c)
        """
    )
    ctx = _block_of(
        cfg,
        lambda e: isinstance(e, ast.Call)
        and isinstance(e.func, ast.Name)
        and e.func.id == "ctx",
    )
    body = _expr_block(cfg, "body")
    assert _reachable(cfg, ctx.block_id, body.block_id)


def test_match_cases_branch_from_the_subject():
    cfg = _cfg(
        """
        def f(x):
            match x:
                case 1:
                    one()
                case _:
                    other()
            after()
        """
    )
    subject = _block_of(cfg, lambda e: isinstance(e, ast.Name) and e.id == "x")
    one = _expr_block(cfg, "one")
    other = _expr_block(cfg, "other")
    after = _expr_block(cfg, "after")
    assert one.block_id in subject.succs
    assert other.block_id in subject.succs
    # No-case-matches fallthrough edge.
    assert after.block_id in subject.succs


def test_code_after_return_is_unreachable_but_visited():
    cfg = _cfg(
        """
        def f():
            return 1
            dead()
        """
    )
    dead = _expr_block(cfg, "dead")
    assert not _reachable(cfg, cfg.entry, dead.block_id)
    # rpo still includes it (appended after the reachable blocks) so
    # analyses replay it with a bottom entry state.
    order = cfg.rpo()
    assert dead.block_id in order
    assert set(order) == set(cfg.blocks)
    assert order[0] == cfg.entry


def test_nested_defs_and_lambdas_are_opaque():
    cfg = _cfg(
        """
        def f():
            def inner():
                inner_only()
            g = lambda: lambda_only()
            class C:
                def m(self):
                    method_only()
            outer()
        """
    )
    # None of the nested bodies leak entries into the outer CFG.
    for name in ("inner_only", "lambda_only", "method_only"):
        assert not any(
            any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id == name
                for e in b.entries
                for n in iter_child_expressions(e)
            )
            for b in cfg.blocks.values()
        ), name
    _expr_block(cfg, "outer")  # the outer statement is present


def test_async_def_builds_like_sync():
    cfg = _cfg(
        """
        async def f(xs):
            async for x in xs:
                await body(x)
            async with ctx():
                await tail()
        """
    )
    header = _block_of(cfg, lambda e: isinstance(e, ast.AsyncFor))
    body = _block_of(
        cfg,
        lambda e: isinstance(e, ast.Expr)
        and isinstance(e.value, ast.Await)
        and isinstance(e.value.value, ast.Call)
        and isinstance(e.value.value.func, ast.Name)
        and e.value.value.func.id == "body",
    )
    assert body.block_id in header.succs


def test_rpo_is_deterministic_and_starts_at_entry():
    source = """
        def f(x):
            if x:
                a()
            else:
                b()
            for i in x:
                c(i)
    """
    orders = {tuple(_cfg(source).rpo()) for _ in range(5)}
    assert len(orders) == 1
    order = next(iter(orders))
    assert order[0] == 0  # entry block is always id 0


def test_iter_functions_qualnames_and_classes():
    tree = ast.parse(
        textwrap.dedent(
            """
            def free():
                def nested():
                    pass

            class Outer:
                def method(self):
                    def helper():
                        pass

                class Inner:
                    async def amethod(self):
                        pass
            """
        )
    )
    got = {(qual, cls) for qual, _, cls in iter_functions(tree)}
    assert got == {
        ("free", None),
        ("free.nested", None),
        ("Outer.method", "Outer"),
        ("Outer.method.helper", None),
        ("Outer.Inner.amethod", "Inner"),
    }
    # Deterministic syntactic order.
    names = [qual for qual, _, _ in iter_functions(tree)]
    assert names == [
        "free",
        "free.nested",
        "Outer.method",
        "Outer.method.helper",
        "Outer.Inner.amethod",
    ]
