#!/usr/bin/env python3
"""Trace a PrimCast execution — the paper's Figure 1, live.

Re-enacts §5.2.5's example (groups g = {p1,p2,p3}, h = {p4,p5,p6},
primaries p1/p4, p5 a-multicasts m to {g, h}) on an exact 1-step network
and prints every message exchange as a space-time listing, then the
delivery events. Useful as a template for tracing any run.

Run:
    python examples/protocol_trace.py
"""

from repro.core import GroupConfig, PrimCastProcess
from repro.sim import ConstantLatency, Network, Scheduler, child_rng, record_flights, render_exchanges


def main() -> None:
    config = GroupConfig([[1, 2, 3], [4, 5, 6]])  # the figure's numbering
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(0, "trace"))
    flights = record_flights(net)
    procs = {
        pid: PrimCastProcess(pid, config, sched, net)
        for pid in config.all_pids
    }
    deliveries = []
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: deliveries.append((sched.now, proc.pid, ts))
        )

    print("p5 a-multicasts m to both groups (g = p1..p3, h = p4..p6):\n")
    procs[5].a_multicast({0, 1}, payload="m")
    sched.run(until=20)

    print(render_exchanges(flights))
    print("\ndeliveries (time, process, final timestamp):")
    for when, pid, ts in sorted(deliveries):
        print(f"  t={when:4.1f}  p{pid}  ts={ts}")

    last = max(when for when, _, _ in deliveries)
    print(f"\nevery destination a-delivered within {last:.0f} communication steps")
    assert abs(last - 3.0) < 1e-6


if __name__ == "__main__":
    main()
