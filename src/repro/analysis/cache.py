"""Content-hash incremental cache for the analysis pass.

The CI lint job analyses the whole tree on every push; almost all of it
is unchanged almost all of the time. This cache keys each file's
findings by the sha256 of its *content* (not mtime — CI checkouts have
fresh mtimes), under a fingerprint that folds in everything else that
could change the answer:

* the sources of the analysis package itself (a rule edit invalidates
  everything),
* the canonical form of the active :class:`AnalysisConfig`,
* the set of rule ids being run.

A fingerprint mismatch simply means a different subdirectory — stale
entries are never *wrong*, only unused. Entries store findings with
paths relative to nothing (verbatim), so a warm run reproduces the cold
run byte-for-byte; the CI job asserts exactly that.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .base import Finding
from .config import AnalysisConfig

_CACHE_VERSION = 1


def _package_fingerprint() -> str:
    """sha256 over the analysis package's own sources (sorted walk)."""
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def compute_fingerprint(
    config: AnalysisConfig, rule_ids: Iterable[str]
) -> str:
    """Cache namespace for one (analysis version, config, rules) triple."""
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}".encode("utf-8"))
    digest.update(_package_fingerprint().encode("utf-8"))
    # The dataclass repr is deterministic: field order is declaration
    # order and every field holds tuples/dicts built from literals.
    digest.update(repr(config).encode("utf-8"))
    digest.update(",".join(sorted(rule_ids)).encode("utf-8"))
    return digest.hexdigest()


class AnalysisCache:
    """File-level findings cache under ``cache_dir``.

    ``get`` / ``put`` key on the file's content hash; hit/miss counters
    feed the CLI's ``cache`` report section.
    """

    def __init__(self, cache_dir: Path, fingerprint: str) -> None:
        self.root = cache_dir / fingerprint[:32]
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._pending_key: Optional[str] = None

    # -- keying --------------------------------------------------------

    @staticmethod
    def _content_key(path: Path) -> str:
        return hashlib.sha256(path.read_bytes()).hexdigest()

    def _entry(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- access --------------------------------------------------------

    def get(self, path: Path) -> Optional[List[Finding]]:
        key = self._content_key(path)
        entry = self._entry(key)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            self._pending_key = key
            return None
        # The same content can live at two paths (fixture copies); the
        # recorded findings carry the original path, so only reuse an
        # entry recorded for this exact path.
        if payload.get("path") != str(path):
            self.misses += 1
            self._pending_key = key
            return None
        self.hits += 1
        self._pending_key = None
        return [
            Finding(
                rule=item["rule"],
                severity=item["severity"],
                path=item["path"],
                line=item["line"],
                col=item["col"],
                message=item["message"],
                context=item["context"],
            )
            for item in payload["findings"]
        ]

    def put(self, path: Path, findings: List[Finding]) -> None:
        key = self._pending_key or self._content_key(path)
        self._pending_key = None
        payload = {
            "path": str(path),
            "findings": [f.to_json() for f in findings],
        }
        tmp = self._entry(key).with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=False), encoding="utf-8"
        )
        tmp.replace(self._entry(key))

    # -- reporting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
