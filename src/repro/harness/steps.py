"""Communication-step measurements (empirical side of Table 1).

These helpers run crafted single-message (and crafted-convoy) executions
on a unit-latency, zero-CPU-cost network, so delivery times are exact
multiples of the communication step Δ and can be compared with the
analytic model in :mod:`repro.harness.analytic`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..baselines.fastcast import FastCastProcess
from ..baselines.whitebox import WhiteBoxProcess
from ..core.config import GroupConfig, uniform_groups
from ..core.process import PrimCastProcess
from ..sim.clock import US_PER_MS, PhysicalClock
from ..sim.costs import zero_cost_model
from ..sim.events import Scheduler
from ..sim.latency import ConstantLatency
from ..sim.network import Network
from ..sim.rng import child_rng

_PROTOCOL_CLASSES = {
    "primcast": PrimCastProcess,
    "primcast-hc": PrimCastProcess,
    "whitebox": WhiteBoxProcess,
    "fastcast": FastCastProcess,
}


def build_bare_system(
    protocol: str,
    n_groups: int,
    group_size: int,
    delta_ms: float = 10.0,
    clock_offsets_ms: Optional[Dict[int, float]] = None,
) -> Tuple[Scheduler, Network, GroupConfig, Dict[int, Any]]:
    """A deployment on an exact-Δ network with free CPUs.

    ``clock_offsets_ms`` assigns adversarial physical-clock offsets for
    the HC variant (pids not listed get offset 0).
    """
    if protocol not in _PROTOCOL_CLASSES:
        raise ValueError(f"unknown protocol {protocol!r}")
    config = uniform_groups(n_groups, group_size)
    scheduler = Scheduler()
    network = Network(scheduler, ConstantLatency(delta_ms), child_rng(0, "steps"))
    costs = zero_cost_model()
    processes: Dict[int, Any] = {}
    for pid in config.all_pids:
        if protocol in ("primcast", "primcast-hc"):
            offset = (clock_offsets_ms or {}).get(pid, 0.0)
            processes[pid] = PrimCastProcess(
                pid,
                config,
                scheduler,
                network,
                costs,
                physical_clock=PhysicalClock(scheduler, offset * US_PER_MS),
                hybrid_clock=(protocol == "primcast-hc"),
            )
        else:
            cls = _PROTOCOL_CLASSES[protocol]
            processes[pid] = cls(pid, config, scheduler, network, costs)
    return scheduler, network, config, processes


def measure_collision_free(
    protocol: str,
    k: int,
    n_groups: int = 8,
    group_size: int = 3,
    delta_ms: float = 10.0,
) -> Dict[str, Any]:
    """One multicast to k groups with no concurrent traffic.

    Returns per-destination step counts, the worst (= the paper's
    delivery latency: time to the *last* destination's a-delivery), the
    leader-only worst case, and the wire-message count.
    """
    scheduler, network, config, processes = build_bare_system(
        protocol, n_groups, group_size, delta_ms
    )
    deliveries: Dict[int, float] = {}

    def hook(proc: Any, multicast: Any, final_ts: int) -> None:
        deliveries[proc.pid] = scheduler.now

    for proc in processes.values():
        proc.add_deliver_hook(hook)
    sender = processes[config.members(0)[1 % group_size]]
    start_time = scheduler.now
    sender.a_multicast(set(range(k)), payload="probe")
    scheduler.run(until=start_time + 40 * delta_ms)

    dest_pids = config.dest_pids(range(k))
    steps = {
        pid: round((deliveries[pid] - start_time) / delta_ms, 6)
        for pid in dest_pids
        if pid in deliveries
    }
    missing = [pid for pid in dest_pids if pid not in deliveries]
    leader_pids = {config.initial_leader(g) for g in range(k)}
    leader_steps = [s for pid, s in steps.items() if pid in leader_pids]
    return {
        "protocol": protocol,
        "k": k,
        "n": group_size,
        "steps_by_pid": steps,
        "max_steps": max(steps.values()) if steps else float("inf"),
        "max_leader_steps": max(leader_steps) if leader_steps else float("inf"),
        "missing": missing,
        "messages": sum(network.counts_by_kind.values()),
        "messages_by_kind": dict(network.counts_by_kind),
    }


def measure_primcast_convoy(
    hybrid: bool = False,
    delta_ms: float = 10.0,
    epsilon_ms: float = 1.0,
) -> Dict[str, float]:
    """Worst-case convoy measurement for PrimCast / PrimCast HC.

    Scenario (§3.2 / §6): message ``m`` to groups {0, 1} gets its final
    timestamp from group 1 (whose clock is higher). A conflicting local
    message ``m2`` is multicast *by group 0's primary itself* (zero
    network distance) at the end of the convoy window — just before
    group 0's primary learns the remote timestamp (plain PrimCast,
    window 2Δ) or just before its physical clock passes ``m``'s final
    timestamp (HC, window Δ + 2ε). ``m`` must then wait for ``m2``'s
    commit, pushing its delivery to ~C+D steps.

    Returns the measured latency of ``m`` in steps, the analytic bound,
    and the collision-free baseline.
    """
    protocol = "primcast-hc" if hybrid else "primcast"
    # Adversarial skew: group 1's primary runs epsilon fast, group 0's
    # epsilon slow (§6's worst case).
    offsets = {3: epsilon_ms, 0: -epsilon_ms}
    scheduler, network, config, processes = build_bare_system(
        protocol, 2, 3, delta_ms, clock_offsets_ms=offsets
    )
    deliveries: Dict[Any, Dict[int, float]] = {}

    def hook(proc: Any, multicast: Any, final_ts: int) -> None:
        deliveries.setdefault(multicast.mid, {})[proc.pid] = scheduler.now

    for proc in processes.values():
        proc.add_deliver_hook(hook)

    p_g1 = processes[config.members(1)[0]]  # primary of group 1
    p_g0 = processes[config.members(0)[0]]  # primary of group 0
    sender = processes[config.members(1)[2]]  # a follower of group 1

    if not hybrid:
        # Raise group 1's logical clock so m's final timestamp comes
        # from group 1 (with hybrid clocks the skew does this instead).
        for _ in range(3):
            p_g1.a_multicast({1}, payload="warm")
        scheduler.run(until=20 * delta_ms)

    t0 = scheduler.now
    m = sender.a_multicast({0, 1}, payload="m")
    # End of the convoy window, minus a margin so m2 lands inside it.
    # m2 is issued by group 0's primary itself (zero distance to the
    # proposer — the latest possible smaller-timestamp proposal) and is
    # *global*, so its final timestamp is only known a full commit
    # latency (3 steps) after its multicast.
    margin = 0.05 * delta_ms
    if hybrid:
        window = delta_ms + 2 * epsilon_ms
    else:
        window = 2 * delta_ms
    m2_holder = {}

    def send_m2() -> None:
        m2_holder["m"] = p_g0.a_multicast({0, 1}, payload="m2")

    p_g0.post_job(send_m2, delay=window - margin)
    scheduler.run(until=t0 + 40 * delta_ms)

    m_deliveries = deliveries.get(m.mid, {})
    dest_pids = config.dest_pids({0, 1})
    latency_steps = max(m_deliveries[pid] - t0 for pid in dest_pids) / delta_ms
    analytic = (
        min(5.0, 4.0 + 2 * epsilon_ms / delta_ms) if hybrid else 5.0
    )
    return {
        "protocol": protocol,
        "measured_steps": round(latency_steps, 3),
        "analytic_steps": analytic,
        "collision_free_steps": 3.0,
        "window_steps": window / delta_ms,
    }
