"""Ablation — hybrid clocks vs clock skew (§6).

Sweeps the clock-skew bound ε and measures the worst-case convoy latency
of PrimCast HC in the crafted §3.2 scenario, against the analytic bound
``min(5Δ, 4Δ + 2ε)``. Plain PrimCast (no synchronized clocks) is the
``ε → ∞`` end of the curve. This is the controlled-experiment version of
the Fig 4/5 convoy claim: one step (2ε ≪ Δ) of failure-free latency is
recovered by loosely synchronized clocks, and badly synchronized clocks
can never make things worse than plain PrimCast.
"""

import pytest

from repro.harness.analytic import hybrid_clock_failure_free_ms
from repro.harness.report import format_table
from repro.harness.steps import measure_primcast_convoy

DELTA_MS = 10.0
EPSILONS = (0.25, 0.5, 1.0, 2.0, 4.0)


def test_hybrid_clock_epsilon_sweep(benchmark):
    plain = measure_primcast_convoy(hybrid=False, delta_ms=DELTA_MS)
    rows = [
        [
            "plain (no sync clocks)",
            "-",
            f"{plain['analytic_steps']:.2f}",
            f"{plain['measured_steps']:.2f}",
        ]
    ]
    results = {}
    for eps in EPSILONS:
        r = measure_primcast_convoy(hybrid=True, delta_ms=DELTA_MS, epsilon_ms=eps)
        results[eps] = r
        bound_steps = hybrid_clock_failure_free_ms(DELTA_MS, eps) / DELTA_MS
        rows.append(
            [
                f"HC eps={eps}ms",
                f"{2 * eps / DELTA_MS:.2f} steps pairwise skew",
                f"{bound_steps:.2f}",
                f"{r['measured_steps']:.2f}",
            ]
        )
    benchmark.pedantic(
        measure_primcast_convoy,
        kwargs=dict(hybrid=True, delta_ms=DELTA_MS, epsilon_ms=1.0),
        rounds=1,
        iterations=1,
    )
    print("\n== Ablation: hybrid-clock skew sweep (worst-case convoy, steps of delta) ==")
    print(
        format_table(
            ["variant", "skew", "bound min(5, 4+2e/d)", "measured"], rows
        )
    )

    # Monotone in epsilon, always within the bound, never above plain.
    prev = 0.0
    for eps in EPSILONS:
        measured = results[eps]["measured_steps"]
        bound = hybrid_clock_failure_free_ms(DELTA_MS, eps) / DELTA_MS
        assert measured <= bound + 0.01
        assert measured <= plain["measured_steps"] + 0.01
        assert measured >= prev - 0.01
        prev = measured
    # With 2*eps an order of magnitude below delta, almost a full step
    # of the convoy is recovered.
    assert results[0.5]["measured_steps"] < plain["measured_steps"] - 0.7
