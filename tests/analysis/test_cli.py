"""CLI behaviour of ``python -m repro.analysis``."""

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.engine import module_name_for

BAD_SOURCE = """\
import random


def jitter(self):
    value = random.random()
    self.send(0, value)
    return value
"""

GOOD_SOURCE = """\
def double(x):
    return 2 * x
"""


def _write_scoped(tmp_path, name, source):
    """Write a fixture under a ``repro/core`` directory so the module
    name lands inside the determinism scope."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / name
    path.write_text(source)
    return path


def test_clean_file_exits_zero(tmp_path, capsys):
    path = _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_violation_exits_one_with_location(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert f"{path}:5:" in out


def test_json_report_shape(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    assert main([str(path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_analyzed"] == 1
    assert report["summary"]["errors"] == 1
    (finding,) = report["findings"]
    assert finding["rule"] == "DET001"
    assert finding["severity"] == "error"
    assert finding["line"] == 5
    assert finding["context"].startswith("repro.core.bad::")


def test_rule_filter_limits_the_run(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    # DET003 alone does not fire on this fixture.
    assert main([str(path), "--rule", "DET003"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    assert main([str(path), "--rule", "DET999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "PROTO101", "PROTO103"):
        assert rule_id in out


def test_module_name_derivation():
    from pathlib import Path

    assert (
        module_name_for(Path("src/repro/core/process.py")) == "repro.core.process"
    )
    assert module_name_for(Path("src/repro/sim/__init__.py")) == "repro.sim"
    assert module_name_for(Path("elsewhere/tool.py")) == "tool"
