"""PrimCast reproduction — a latency-efficient atomic multicast.

Full from-scratch reproduction of *PrimCast: A Latency-Efficient Atomic
Multicast* (Pacheco, Coelho, Pedone — Middleware '23), including the
baselines it is evaluated against (FastCast, White-Box), the simulation
substrate standing in for the paper's testbed, and the harness that
regenerates every table and figure of §7.

Quick start::

    from repro.sim import Scheduler, Network, ConstantLatency, child_rng
    from repro.core import uniform_groups, PrimCastProcess

    config = uniform_groups(n_groups=2, group_size=3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(42, "net"))
    procs = {pid: PrimCastProcess(pid, config, sched, net)
             for pid in config.all_pids}
    procs[0].add_deliver_hook(lambda p, m, ts: print("delivered", m.mid, ts))
    procs[4].a_multicast({0, 1}, payload="hello")
    sched.run(until=100)

Subpackages:

* :mod:`repro.core` — the PrimCast protocol (Algorithms 1–3, §6).
* :mod:`repro.baselines` — FastCast, White-Box, Skeen.
* :mod:`repro.sim` — discrete-event network/CPU/clock simulation.
* :mod:`repro.rmcast` — FIFO non-uniform reliable multicast.
* :mod:`repro.election` — the Ω leader oracle.
* :mod:`repro.consensus` — single-decree Paxos substrate.
* :mod:`repro.verify` — atomic multicast property checkers.
* :mod:`repro.apps` — a partitioned replicated KV store built on it.
* :mod:`repro.workload` — clients and Table 2 deployment scenarios.
* :mod:`repro.harness` — experiment runner and per-figure definitions.
"""

__version__ = "1.0.0"

# _backend must load before any compilable module: importing it installs
# the REPRO_COMPILED=0 source-forcing hook (see repro/_backend.py).
from ._backend import backend_info
from . import apps, baselines, consensus, core, election, harness, rmcast, sim, verify, workload

__all__ = [
    "backend_info",
    "core",
    "apps",
    "baselines",
    "sim",
    "rmcast",
    "election",
    "consensus",
    "verify",
    "workload",
    "harness",
    "__version__",
]
