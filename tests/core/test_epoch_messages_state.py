"""Unit tests for epochs, message types and the incremental trackers."""

import pytest

from repro.core.config import GroupConfig
from repro.core.epoch import Epoch, initial_epoch
from repro.core.messages import Ack, Bump, Multicast, Start
from repro.core.state import AckTracker, ClockTracker, SafetyViolationError


class TestEpoch:
    def test_ordering_by_number_then_leader(self):
        assert Epoch(0, 5) < Epoch(1, 0)
        assert Epoch(1, 0) < Epoch(1, 2)

    def test_next_for_increments_number(self):
        e = Epoch(3, 1)
        assert e.next_for(7) == Epoch(4, 7)
        assert e.next_for(7) > e

    def test_initial_epoch(self):
        e = initial_epoch(2)
        assert e == Epoch(0, 2)
        assert e.leader == 2

    def test_str(self):
        assert str(Epoch(2, 9)) == "e2@9"


class TestMulticast:
    def test_dest_is_frozenset(self):
        m = Multicast((0, 0), frozenset({1, 2}))
        assert m.dest == {1, 2}

    def test_empty_dest_rejected(self):
        with pytest.raises(ValueError):
            Multicast((0, 0), frozenset())

    def test_local_vs_global(self):
        assert Multicast((0, 0), frozenset({1})).is_local
        assert not Multicast((0, 0), frozenset({1, 2})).is_local

    def test_message_kinds(self):
        m = Multicast((0, 0), frozenset({0}))
        assert Start(m).kind == "start"
        assert Start(m).mid == (0, 0)
        ack = Ack(m, 0, Epoch(0, 0), 1, 0)
        assert ack.kind == "ack"
        assert ack.mid == (0, 0)
        assert Bump(Epoch(0, 0), 1, 0).kind == "bump"


class TestAckTracker:
    def _config(self):
        return GroupConfig([[0, 1, 2]])

    def test_quorum_decides(self):
        config = self._config()
        t = AckTracker()
        assert not t.add_ack(config, 0, Epoch(0, 0), 5, 0, (9, 9))
        assert t.local_ts is None
        assert t.add_ack(config, 0, Epoch(0, 0), 5, 1, (9, 9))
        assert t.local_ts == 5
        assert t.decided_epoch == Epoch(0, 0)

    def test_duplicate_sender_does_not_count_twice(self):
        config = self._config()
        t = AckTracker()
        t.add_ack(config, 0, Epoch(0, 0), 5, 0, (9, 9))
        assert not t.add_ack(config, 0, Epoch(0, 0), 5, 0, (9, 9))
        assert t.local_ts is None

    def test_acks_from_different_epochs_do_not_mix(self):
        config = self._config()
        t = AckTracker()
        t.add_ack(config, 0, Epoch(0, 0), 5, 0, (9, 9))
        assert not t.add_ack(config, 0, Epoch(1, 1), 5, 1, (9, 9))
        assert t.local_ts is None
        assert t.add_ack(config, 0, Epoch(1, 1), 5, 2, (9, 9))
        assert t.local_ts == 5

    def test_conflicting_ts_same_epoch_raises(self):
        config = self._config()
        t = AckTracker()
        t.add_ack(config, 0, Epoch(0, 0), 5, 0, (9, 9))
        with pytest.raises(SafetyViolationError):
            t.add_ack(config, 0, Epoch(0, 0), 6, 1, (9, 9))

    def test_decision_is_sticky(self):
        config = self._config()
        t = AckTracker()
        t.add_ack(config, 0, Epoch(0, 0), 5, 0, (9, 9))
        t.add_ack(config, 0, Epoch(0, 0), 5, 1, (9, 9))
        assert not t.add_ack(config, 0, Epoch(2, 2), 8, 2, (9, 9))
        assert t.local_ts == 5


class TestClockTracker:
    def test_observe_below_current_epoch_counts(self):
        t = ClockTracker([0, 1, 2])
        e = Epoch(1, 0)
        assert t.observe(e, Epoch(0, 0), 7, 1)
        assert t.min_clock(1) == 7

    def test_observe_is_max(self):
        t = ClockTracker([0, 1])
        e = Epoch(0, 0)
        t.observe(e, e, 7, 0)
        assert not t.observe(e, e, 3, 0)
        assert t.min_clock(0) == 7

    def test_future_epoch_deferred_until_advance(self):
        t = ClockTracker([0, 1])
        e0, e2 = Epoch(0, 0), Epoch(2, 1)
        assert not t.observe(e0, e2, 9, 1)
        assert t.min_clock(1) == 0
        assert t.advance_epoch(e2)
        assert t.min_clock(1) == 9

    def test_advance_keeps_still_future_tuples(self):
        t = ClockTracker([0])
        e0, e1, e5 = Epoch(0, 0), Epoch(1, 0), Epoch(5, 0)
        t.observe(e0, e5, 4, 0)
        assert not t.advance_epoch(e1)
        assert t.min_clock(0) == 0
        assert t.advance_epoch(e5)
        assert t.min_clock(0) == 4

    def test_unknown_member_defaults_to_zero(self):
        t = ClockTracker([0, 1])
        assert t.min_clock(42) == 0
