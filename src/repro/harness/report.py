"""Plain-text rendering of experiment results (the benches' output).

Also the perf-trajectory dashboard::

    python -m repro.harness.report --history

renders ``BENCH_history.jsonl`` (one timestamped measurement row per
``perf --append-history`` run) as a markdown table with per-row deltas —
the same table EXPERIMENTS.md embeds between its BENCH_HISTORY markers
(``--update-experiments`` rewrites it in place).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from .runner import RunResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with padded columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    out = [line, sep]
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def throughput_latency_rows(results: List[RunResult]) -> List[List[str]]:
    """Rows in the shape of the paper's throughput/latency figures."""
    rows = []
    for r in results:
        rows.append(
            [
                r.protocol,
                str(r.n_dest_groups),
                str(r.outstanding),
                f"{r.throughput_kmsgs:.2f}",
                f"{r.latency['p50']:.2f}",
                f"{r.latency['p95']:.2f}",
                f"{r.latency['mean']:.2f}",
                str(int(r.latency["count"])),
            ]
        )
    return rows


THROUGHPUT_HEADERS = [
    "protocol",
    "dests",
    "outstanding",
    "tput (k msg/s)",
    "p50 (ms)",
    "p95 (ms)",
    "mean (ms)",
    "samples",
]


def print_results(title: str, results: List[RunResult]) -> None:
    """Print one figure's curve data."""
    print(f"\n== {title} ==")
    print(format_table(THROUGHPUT_HEADERS, throughput_latency_rows(results)))


def max_throughput_by_protocol(results: List[RunResult]) -> Dict[str, float]:
    """Peak measured throughput (msg/s) per protocol in a sweep."""
    best: Dict[str, float] = {}
    for r in results:
        best[r.protocol] = max(best.get(r.protocol, 0.0), r.throughput)
    return best


# ----------------------------------------------------------------------
# perf trajectory dashboard (BENCH_history.jsonl -> markdown)
# ----------------------------------------------------------------------


def history_markdown(rows: List[Dict[str, Any]]) -> str:
    """Markdown trajectory table over perf-history rows, oldest first.

    Rows come in two shapes, split into separate sections by their
    ``backend`` tag: simulator smoke-point measurements (``perf
    --append-history``; wall seconds and events/sec) and net-backend
    wire-path measurements (``perf --net --append-history``; msgs/sec
    over real sockets). The two are not comparable — the Δ column of
    each section tracks its own previous row only.
    """
    sim_rows = [r for r in rows if r.get("backend") != "net"]
    net_rows = [r for r in rows if r.get("backend") == "net"]
    if not net_rows:
        # Pure-sim logs (and the empty log) render exactly as before.
        return _sim_history_table(sim_rows)
    sections: List[str] = []
    if sim_rows:
        sections.append(_sim_history_table(sim_rows))
    header = "**Net backend (wire-path msgs/sec, real sockets)**"
    sections.append(header + "\n\n" + _net_history_table(net_rows))
    return "\n\n".join(sections)


def _sim_history_table(rows: List[Dict[str, Any]]) -> str:
    """The simulator smoke-point trajectory (the original table).

    The Δ column is the events/sec change against the *previous* row,
    so per-PR wins and regressions read directly off the table;
    speedup-vs-seed is cumulative.
    """
    lines = [
        "| When (UTC) | backend | wall (s) | events/s | Δ events/s | speedup vs seed | note |",
        "|---|---|---|---|---|---|---|",
    ]
    prev_eps: Optional[float] = None
    for row in rows:
        eps = float(row.get("events_per_sec", 0.0))
        if prev_eps and prev_eps > 0:
            delta = f"{(eps / prev_eps - 1.0) * 100.0:+.1f}%"
        else:
            delta = "—"
        prev_eps = eps
        lines.append(
            "| {timestamp} | {backend} | {wall_s:.3f} | {eps:,.0f} | {delta} | {speedup:.2f}x | {note} |".format(
                timestamp=row.get("timestamp", "?"),
                backend=row.get("backend", "?"),
                wall_s=row.get("wall_s", 0.0),
                eps=eps,
                delta=delta,
                speedup=row.get("speedup_vs_seed", 0.0),
                note=row.get("note", "") or "—",
            )
        )
    return "\n".join(lines)


def _net_history_table(rows: List[Dict[str, Any]]) -> str:
    """The net-backend trajectory: throughput and latency of the best
    open-loop/binary point plus its headline ratios (speedup over the
    sequential/JSON baseline, JSON/binary frame-size ratio)."""
    lines = [
        "| When (UTC) | point | msgs/s | Δ msgs/s | p50 (ms) | p99 (ms) | vs seq | json/bin bytes | note |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    prev_mps: Optional[float] = None
    for row in rows:
        mps = float(row.get("msgs_per_sec", 0.0))
        if prev_mps and prev_mps > 0:
            delta = f"{(mps / prev_mps - 1.0) * 100.0:+.1f}%"
        else:
            delta = "—"
        prev_mps = mps
        lines.append(
            "| {timestamp} | {point} | {mps:,.0f} | {delta} | {p50:.1f} | {p99:.1f} | {speedup:.2f}x | {ratio:.2f}x | {note} |".format(
                timestamp=row.get("timestamp", "?"),
                point=row.get("point", "?"),
                mps=mps,
                delta=delta,
                p50=row.get("p50_ms", 0.0),
                p99=row.get("p99_ms", 0.0),
                speedup=row.get("speedup_vs_seq", 0.0),
                ratio=row.get("codec_bytes_ratio", 0.0),
                note=row.get("note", "") or "—",
            )
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: render the perf trajectory (``--history``).

    Reads ``BENCH_history.jsonl`` (or ``--path``), prints the markdown
    table; ``--update-experiments`` also rewrites the marker-delimited
    table in EXPERIMENTS.md. Exit 1 when the log is missing/empty.
    """
    import argparse
    from pathlib import Path

    # Lazy import: perf pulls in the whole simulator; plain table
    # formatting must not.
    from .perf import read_history, update_experiments_history

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.report",
        description="render experiment artifacts; --history renders the "
        "BENCH_history.jsonl perf trajectory as markdown",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="render the perf-trajectory table from BENCH_history.jsonl",
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=None,
        help="history log to read (default: BENCH_history.jsonl at the "
        "repository root)",
    )
    parser.add_argument(
        "--update-experiments",
        action="store_true",
        help="also rewrite the BENCH_HISTORY table in EXPERIMENTS.md",
    )
    args = parser.parse_args(argv)
    if not args.history:
        parser.error("nothing to do: pass --history")
    rows = read_history(args.path)
    if not rows:
        print("no history rows found (run: python -m repro.harness.perf "
              "--append-history)")
        return 1
    print(history_markdown(rows))
    if args.update_experiments:
        target = update_experiments_history(rows)
        print(f"\nupdated {target.name}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
