"""Epochs for PrimCast's primary-based group protocol (§5.2.1).

An epoch is owned by exactly one process — the epoch leader. Epochs are
totally ordered per group and carry their owner, so ``leader(E)`` is a
projection and two candidates can never own the same epoch. Epochs of
different groups are unrelated; each group advances its epochs
independently.
"""

from __future__ import annotations

from typing import NamedTuple


class Epoch(NamedTuple):
    """An epoch ``(number, leader_pid)``, ordered lexicographically."""

    number: int
    leader: int

    def next_for(self, pid: int) -> "Epoch":
        """The next epoch higher than this one owned by ``pid``
        (Algorithm 3, line 59)."""
        return Epoch(self.number + 1, pid)

    def __str__(self) -> str:
        return f"e{self.number}@{self.leader}"


def initial_epoch(leader_pid: int) -> Epoch:
    """The epoch every group member starts in (Algorithm 1, lines 6–8)."""
    return Epoch(0, leader_pid)
