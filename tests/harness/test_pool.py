"""Tests for the persistent worker-pool campaign runtime (repro.harness.pool).

Three contracts, straight from DESIGN.md §11:

* **determinism** — dynamic (work-stealing) dispatch, but results
  reassembled by spec index: output is byte-identical to the serial
  loop at any job count;
* **amortization** — workers are spawned once and reused across every
  batch an executor (or campaign) issues;
* **checkpoint/resume** — results stream into the content-addressed
  cache as they complete, so a campaign killed mid-flight resumes with
  zero re-executions of completed cases and a byte-identical report.
"""

import json
import time
from dataclasses import dataclass
from typing import Any, Dict

import pytest

from repro.harness.cache import ResultCache
from repro.harness.parallel import SweepExecutor, expand_sweep, point_spec
from repro.harness.pool import WorkerCrash, WorkerPool
from repro.workload.scenarios import (
    lan_fleet,
    lan_scenario,
    wan_colocated_leaders,
)


# Specs must be module-level so they pickle by reference into workers.


@dataclass(frozen=True)
class EchoSpec:
    """Trivial spec: returns its own index (orchestration-only cost)."""

    index: int

    def canonical(self) -> Dict[str, Any]:
        return {"echo": self.index}

    def run(self) -> int:
        return self.index


@dataclass(frozen=True)
class SleepSpec:
    """Spec that sleeps, for scheduling (not determinism) tests."""

    index: int
    sleep_s: float

    def canonical(self) -> Dict[str, Any]:
        return {"sleep": self.index}

    def run(self) -> int:
        time.sleep(self.sleep_s)
        return self.index


@dataclass(frozen=True)
class FailSpec:
    index: int

    def canonical(self) -> Dict[str, Any]:
        return {"fail": self.index}

    def run(self) -> int:
        raise ValueError(f"spec {self.index} exploded")


def small_sweep_specs(**overrides):
    kwargs = dict(seed=1, warmup_ms=20.0, measure_ms=40.0)
    kwargs.update(overrides)
    return expand_sweep(
        ("primcast", "whitebox"), lan_scenario(2, 3), 2, (1, 2), **kwargs
    )


# -- determinism: spec-order reassembly at any job count ----------------


def test_results_in_spec_order_at_any_job_count():
    specs = [EchoSpec(i) for i in range(20)]
    for jobs in (1, 2, 4):
        with WorkerPool(jobs=jobs) as pool:
            assert pool.run(specs) == list(range(20))


def test_sweep_reports_byte_identical_across_jobs():
    """The acceptance criterion verbatim: the serialized report of a
    real sweep is byte-for-byte the same at jobs 1, 2 and 4."""
    specs = small_sweep_specs()
    reports = {}
    for jobs in (1, 2, 4):
        with SweepExecutor(jobs=jobs) as executor:
            results = executor.run(specs)
        reports[jobs] = json.dumps(
            [r.to_dict() for r in results], sort_keys=True
        )
    assert reports[1] == reports[2] == reports[4]


def test_eight_group_scenario_through_pool():
    """>= 8 groups (24 processes) at d=8 — the paper's full fan-out —
    runs through the pool and stays identical to serial."""
    spec = point_spec(
        "primcast",
        wan_colocated_leaders(8, 3),
        8,
        1,
        warmup_ms=10.0,
        measure_ms=20.0,
    )
    assert spec.n_groups * spec.group_size == 24
    with SweepExecutor(jobs=1) as serial:
        want = serial.run([spec])
    with SweepExecutor(jobs=2) as pooled:
        got = pooled.run([spec])
    assert [r.to_dict() for r in got] == [r.to_dict() for r in want]


def test_twenty_group_fleet_through_pool():
    """The 20-group (60-process) LAN fleet scenario, pooled == serial."""
    spec = point_spec(
        "primcast", lan_fleet(20, 3), 2, 1, warmup_ms=2.0, measure_ms=5.0
    )
    assert spec.n_groups * spec.group_size == 60
    with SweepExecutor(jobs=1) as serial:
        want = serial.run([spec])
    with SweepExecutor(jobs=2) as pooled:
        got = pooled.run([spec])
    assert [r.to_dict() for r in got] == [r.to_dict() for r in want]


# -- dynamic scheduling -------------------------------------------------


def test_straggler_does_not_serialize_the_queue():
    """Work stealing: with the long case dispatched first, the other
    worker drains every short case while it runs — the straggler
    finishes last instead of gating the batch."""
    straggler = SleepSpec(0, sleep_s=1.0)
    shorts = [SleepSpec(i, sleep_s=0.02) for i in range(1, 6)]
    completions = []

    def on_result(index, spec, result):
        completions.append(index)

    with WorkerPool(jobs=2) as pool:
        t0 = time.perf_counter()
        results = pool.run([straggler] + shorts, on_result=on_result)
        wall = time.perf_counter() - t0
    assert results == list(range(6))
    # The straggler completes last; every short case overtook it.
    assert completions[-1] == 0
    assert sorted(completions[:-1]) == [1, 2, 3, 4, 5]
    # And the batch cost ~max(straggler, sum(shorts)), not the serial
    # sum (1.1s); generous bound for noisy CI machines.
    assert wall < 1.9


# -- amortization: pool reuse across batches ----------------------------


def test_workers_spawned_once_and_reused_across_batches():
    with WorkerPool(jobs=2) as pool:
        for batch in range(3):
            pool.run([EchoSpec(batch * 10 + i) for i in range(10)])
        stats = pool.stats()
    assert stats["spawned"] == 2
    assert stats["batches"] == 3
    assert stats["dispatched"] == 30
    # Dynamic dispatch: both workers actually consumed cases.
    assert sorted(stats["per_worker"]) == ["w0", "w1"]
    assert sum(stats["per_worker"].values()) == 30


def test_jobs1_runs_inline_without_processes():
    with WorkerPool(jobs=1) as pool:
        assert pool.run([EchoSpec(i) for i in range(4)]) == [0, 1, 2, 3]
        stats = pool.stats()
    assert stats["spawned"] == 0
    assert stats["inline"] == 4
    assert stats["per_worker"] == {"inline": 4}


def test_executor_shares_one_pool_across_runs():
    specs = small_sweep_specs()
    with SweepExecutor(jobs=2) as executor:
        executor.run(specs[:2])
        executor.run(specs[2:])
        stats = executor.pool_stats()
    assert stats["spawned"] == 2
    assert stats["batches"] == 2
    assert stats["dispatched"] == 4


def test_executors_can_share_an_external_pool():
    with WorkerPool(jobs=2) as pool:
        a = SweepExecutor(pool=pool)
        b = SweepExecutor(pool=pool)
        assert a.jobs == b.jobs == 2
        assert a.run([EchoSpec(0)]) == [0]
        assert b.run([EchoSpec(1)]) == [1]
        # Executors never close a shared pool.
        a.close()
        b.close()
        assert not pool.closed
        assert pool.stats()["spawned"] == 2


def test_pool_rejects_use_after_close():
    pool = WorkerPool(jobs=2)
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.run([EchoSpec(0)])


def test_pool_rejects_bad_jobs():
    with pytest.raises(ValueError):
        WorkerPool(jobs=0)


# -- error propagation --------------------------------------------------


def test_worker_exception_propagates_with_traceback():
    with pytest.raises(WorkerCrash, match="spec 1 raised ValueError") as info:
        with WorkerPool(jobs=2) as pool:
            pool.run([EchoSpec(0), FailSpec(1), EchoSpec(2)])
    assert info.value.spec_index == 1
    assert "exploded" in str(info.value)


def test_inline_exception_propagates_directly():
    with pytest.raises(ValueError, match="exploded"):
        with WorkerPool(jobs=1) as pool:
            pool.run([FailSpec(0)])


# -- checkpoint/resume --------------------------------------------------


def test_results_checkpoint_to_cache_as_they_complete(tmp_path):
    """By the time on_result fires, the case is already on disk — the
    property kill-mid-campaign resume depends on."""
    cache = ResultCache(tmp_path / "cache")
    specs = small_sweep_specs()
    seen = []

    def on_result(index, spec, result):
        assert cache.entry_path(spec).exists()
        seen.append(index)

    with SweepExecutor(jobs=2, cache=cache) as executor:
        executor.run(specs, on_result=on_result)
    assert sorted(seen) == [0, 1, 2, 3]


def test_killed_sweep_resumes_with_zero_reexecutions(tmp_path):
    """Abort after 2 completions; the resumed executor must serve those
    from cache (0 re-runs) and produce the byte-identical report."""
    specs = small_sweep_specs()
    with SweepExecutor(jobs=1) as serial:
        want = json.dumps(
            [r.to_dict() for r in serial.run(specs)], sort_keys=True
        )

    class Killed(Exception):
        pass

    done = 0

    def killer(index, spec, result):
        nonlocal done
        done += 1
        if done >= 2:
            raise Killed()

    with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as victim:
        with pytest.raises(Killed):
            victim.run(specs, on_result=killer)

    with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as resumed:
        results = resumed.run(specs)
        stats = dict(resumed.last_stats)
    # Everything completed before the kill is a hit; nothing is re-run.
    assert stats["hits"] >= 2
    assert stats["ran"] == len(specs) - stats["hits"]
    assert json.dumps([r.to_dict() for r in results], sort_keys=True) == want


def test_warm_cache_spawns_no_workers(tmp_path):
    specs = small_sweep_specs()
    with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as cold:
        cold.run(specs)
    with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as warm:
        warm.run(specs)
        assert warm.last_stats == {"points": 4, "hits": 4, "ran": 0}
        # A fully warm run never touches the pool at all.
        assert warm.pool_stats() == {}


# -- streaming callback semantics ---------------------------------------


def test_on_result_fires_for_hits_in_spec_order(tmp_path):
    cache = ResultCache(tmp_path / "c")
    specs = small_sweep_specs()
    with SweepExecutor(jobs=1, cache=cache) as cold:
        cold.run(specs)
    order = []
    with SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c")) as warm:
        warm.run(specs, on_result=lambda i, s, r: order.append(i))
    assert order == [0, 1, 2, 3]


def test_point_spec_decodes_cached_results_as_run_result(tmp_path):
    cache = ResultCache(tmp_path / "c")
    spec = small_sweep_specs()[0]
    result = spec.run()
    cache.put(spec, result)
    back = cache.get(spec)
    assert isinstance(back, type(result))
    assert back == result
