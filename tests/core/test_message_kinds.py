"""Every wire message class must declare a class-level ``kind``.

The substrate's hot paths (network accounting, the CPU cost model, the
batching layer) read ``msg.kind`` on every hop and rely on it being a
class attribute — no per-instance storage, no property dispatch. This
test pins that contract for every protocol's wire messages so a new
message class cannot silently fall back to the slow/kindless path.
"""

from repro.baselines.classic import CLASSIC_KINDS, ClStart, ClTimestamp
from repro.baselines.fastcast import (
    FASTCAST_KINDS,
    Fc2A,
    Fc2B,
    FcHard,
    FcSoft,
    FcStart,
)
from repro.baselines.whitebox import (
    WHITEBOX_KINDS,
    WbAccept,
    WbAck,
    WbDeliver,
    WbStart,
)
from repro.consensus.paxos import Accept, Accepted, Prepare, Promise
from repro.core.messages import (
    PRIMCAST_KINDS,
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    Multicast,
    NewEpoch,
    NewState,
    Start,
)
from repro.rmcast.fifo import BATCHABLE_KINDS, Batch, Envelope
from repro.sim.costs import default_cost_model

PRIMCAST_CLASSES = (Start, Ack, Bump, NewEpoch, EpochPromise, NewState, AcceptEpoch)
WHITEBOX_CLASSES = (WbStart, WbAccept, WbAck, WbDeliver)
FASTCAST_CLASSES = (FcStart, FcSoft, FcHard, Fc2A, Fc2B)
CLASSIC_CLASSES = (ClStart, ClTimestamp)
PAXOS_CLASSES = (Prepare, Promise, Accept, Accepted)

ALL_WIRE_CLASSES = (
    PRIMCAST_CLASSES
    + WHITEBOX_CLASSES
    + FASTCAST_CLASSES
    + CLASSIC_CLASSES
    + PAXOS_CLASSES
    + (Batch,)
)


def test_every_wire_class_declares_class_level_kind():
    for cls in ALL_WIRE_CLASSES:
        assert "kind" in vars(cls), f"{cls.__name__} must define kind on the class"
        assert isinstance(cls.kind, str) and cls.kind, cls.__name__
        # kind must not be shadowed per instance (it would defeat the
        # class-attribute fast path and __slots__ forbids it anyway).
        slots = vars(cls).get("__slots__")
        if slots is not None:
            assert "kind" not in slots, f"{cls.__name__} stores kind per instance"


def test_kind_tuples_match_declared_classes():
    assert set(PRIMCAST_KINDS) == {cls.kind for cls in PRIMCAST_CLASSES}
    assert set(WHITEBOX_KINDS) == {cls.kind for cls in WHITEBOX_CLASSES}
    assert set(FASTCAST_KINDS) == {cls.kind for cls in FASTCAST_CLASSES}
    assert set(CLASSIC_KINDS) >= {cls.kind for cls in CLASSIC_CLASSES}


def test_envelope_mirrors_payload_kind():
    env = Envelope(0, 0, Ack(Multicast((0, 0), frozenset({0})), 0, None, 1, 0), (0,))
    assert env.kind == "ack"
    assert Envelope(0, 1, object(), (0,)).kind == "rm"  # kindless payload


def test_batchable_kinds_are_priced_by_the_default_cost_model():
    model = default_cost_model()
    for kind in BATCHABLE_KINDS | {Batch.kind}:
        assert kind in model.recv_costs, kind
        assert kind in model.send_costs, kind
    # A batch must cost one control message, not the sum of its contents
    # (the §7.1 merge amortization).
    assert model.recv_costs[Batch.kind] == model.recv_costs["ack"]
