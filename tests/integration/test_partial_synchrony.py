"""Partial synchrony (§2.1): progress resumes after the GST.

Partitions model the asynchronous period — traffic is *delayed*, not
lost (channels are reliable). Healing the partition is the GST; atomic
multicast must then make progress: every message multicast before or
during the partition is eventually delivered by every correct
destination, in a consistent order.
"""

import pytest

from helpers import MiniSystem
from repro.verify import check_acyclic_order, check_timestamp_order


def test_partition_delays_but_does_not_lose_traffic():
    sys_ = MiniSystem(n_groups=2)
    net = sys_.network
    # Isolate group 0's primary from its followers.
    net.partition([0], [1, 2])
    m = sys_.multicast(4, {0, 1})
    sys_.run(until=100)
    # The followers of group 0 cannot form the local-ts quorum: nothing
    # destined to group 0 can be delivered anywhere.
    assert all(not sys_.deliveries[pid] for pid in range(6))
    # GST: heal. The parked primary acks arrive, the quorum forms.
    net.heal()
    sys_.run(until=300)
    for pid in range(6):
        assert [x[0] for x in sys_.deliveries[pid]] == [m.mid], f"pid {pid}"


def test_traffic_during_partition_ordered_after_heal():
    sys_ = MiniSystem(n_groups=2)
    net = sys_.network
    mids = []
    # Some messages before the partition...
    for i in range(3):
        mids.append(sys_.multicast(1, {0, 1}).mid)
    sys_.run(until=20)
    # ...then a partition splits group 1 internally while traffic flows.
    net.partition([3], [4, 5])
    for i in range(4):
        mids.append(sys_.multicast(2, {0, 1}).mid)
    sys_.run(until=60)
    net.heal()
    sys_.run(until=500)
    for pid in range(6):
        assert {x[0] for x in sys_.deliveries[pid]} == set(mids)
    check_acyclic_order(sys_.logs)
    check_timestamp_order(sys_.logs)
    orders = {tuple(x[0] for x in sys_.deliveries[pid]) for pid in range(6)}
    assert len(orders) == 1


def test_cross_group_partition_stalls_only_global_messages():
    sys_ = MiniSystem(n_groups=2)
    net = sys_.network
    # Full partition between the two groups.
    net.partition([0, 1, 2], [3, 4, 5])
    local_g0 = sys_.multicast(1, {0})
    local_g1 = sys_.multicast(4, {1})
    global_m = sys_.multicast(1, {0, 1})
    sys_.run(until=100)
    # Genuineness pays off: local traffic is unaffected.
    assert [x[0] for x in sys_.deliveries[0]] == [local_g0.mid]
    assert [x[0] for x in sys_.deliveries[3]] == [local_g1.mid]
    assert all(global_m.mid not in [x[0] for x in sys_.deliveries[p]] for p in range(6))
    net.heal()
    sys_.run(until=300)
    for pid in range(6):
        assert global_m.mid in [x[0] for x in sys_.deliveries[pid]]
    check_timestamp_order(sys_.logs)


def test_repeated_partitions():
    sys_ = MiniSystem(n_groups=2)
    net = sys_.network
    mids = []
    for round_i in range(3):
        net.partition([0], [1, 2])
        mids.append(sys_.multicast(5, {0, 1}).mid)
        sys_.run(until=sys_.scheduler.now + 30)
        net.heal()
        sys_.run(until=sys_.scheduler.now + 30)
    for pid in range(6):
        assert {x[0] for x in sys_.deliveries[pid]} == set(mids)
    check_acyclic_order(sys_.logs)
