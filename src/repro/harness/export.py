"""Result export: CSV and JSON serialization of experiment runs.

The benches print human-readable tables; this module writes the same
data in machine-readable form so results can be archived, diffed across
runs, or plotted with external tooling (the repository itself stays
dependency-free).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Sequence, Tuple

from .runner import RunResult

#: Column order for CSV export.
CSV_FIELDS = (
    "protocol",
    "scenario",
    "n_dest_groups",
    "outstanding",
    "throughput",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "samples",
    "events",
    "backend",
)


def result_row(result: RunResult) -> Dict[str, object]:
    """Flatten one RunResult into a CSV/JSON-friendly dict.

    Built on :meth:`RunResult.to_dict` (the shared full serialization,
    also used by the result cache); this view keeps only the flat,
    plot-ready columns of :data:`CSV_FIELDS`.
    """
    data = result.to_dict()
    latency = data["latency"]
    return {
        "protocol": data["protocol"],
        "scenario": data["scenario"],
        "n_dest_groups": data["n_dest_groups"],
        "outstanding": data["outstanding"],
        "throughput": data["throughput"],
        "mean_ms": latency.get("mean", 0.0),
        "p50_ms": latency.get("p50", 0.0),
        "p95_ms": latency.get("p95", 0.0),
        "p99_ms": latency.get("p99", 0.0),
        "samples": int(latency.get("count", 0)),
        "events": data["events"],
        "backend": data["backend"],
    }


def write_csv(path: str, results: Iterable[RunResult]) -> None:
    """Write a sweep's results to ``path`` as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for result in results:
            writer.writerow(result_row(result))


def write_json(path: str, results: Iterable[RunResult]) -> None:
    """Write a sweep's results to ``path`` as a JSON array."""
    with open(path, "w") as handle:
        json.dump([result_row(r) for r in results], handle, indent=2)
        handle.write("\n")


def write_cdf_csv(
    path: str, curves: Dict[str, List[Tuple[float, float]]]
) -> None:
    """Write Figure 5-style CDF curves: series, latency_ms, fraction."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "latency_ms", "fraction"])
        for series in sorted(curves):
            for latency, fraction in curves[series]:
                writer.writerow([series, latency, fraction])


def read_csv(path: str) -> List[Dict[str, str]]:
    """Round-trip helper (used by tests and comparisons)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))
