"""Edge cases of Algorithm 3: failures during the epoch change itself."""

import pytest

from repro.core import PrimCastProcess, uniform_groups
from repro.core.process import PRIMARY
from repro.election.omega import make_oracles
from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_timestamp_order


def build(n_groups=1, group_size=5, poll=5.0):
    config = uniform_groups(n_groups, group_size)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(8, "edge"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids
    }
    oracles = make_oracles(config.groups, procs, sched, poll)
    for pid, p in procs.items():
        p.omega = oracles[config.group_of[pid]]
        p.omega.subscribe(p._on_omega_output)
    inj = FailureInjector(sched, procs)
    logs = {pid: [] for pid in procs}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: logs[proc.pid].append((m.mid, ts, sched.now))
        )
    return config, sched, procs, inj, logs


def test_candidate_crash_mid_election_next_leader_takes_over():
    """p0 crashes; candidate p1 crashes during its own epoch change;
    p2 must complete a later epoch and restore progress."""
    config, sched, procs, inj, logs = build()
    m1 = procs[3].a_multicast({0})
    inj.crash_at(0, 1.2)
    # p1 will become candidate around t≈5 (poll); kill it mid-election.
    inj.crash_at(1, 6.5)
    sched.run(until=300)
    m2 = procs[3].a_multicast({0})
    sched.run(until=500)
    assert procs[2].role == PRIMARY
    for pid in (2, 3, 4):
        assert [x[0] for x in logs[pid]] == [m1.mid, m2.mid], f"pid {pid}"
    correct = {pid: logs[pid] for pid in (2, 3, 4)}
    check_acyclic_order(correct)
    check_timestamp_order(correct)


def test_crash_during_new_state_distribution():
    """Crash the candidate after promises but before everyone accepts;
    the follow-up leader must still converge on one T."""
    config, sched, procs, inj, logs = build()
    for i in range(5):
        sched.call_at(i * 0.5, procs[3].a_multicast, {0}, None)
    inj.crash_at(0, 2.2)  # primary dies with proposals in flight
    # p1's election runs ~t in [5, 9]; crash it right in the middle.
    inj.crash_at(1, 7.3)
    sched.run(until=400)
    survivors = (2, 3, 4)
    delivered = [tuple(x[0] for x in logs[pid]) for pid in survivors]
    assert len(set(delivered)) == 1
    assert len(delivered[0]) == 5
    check_acyclic_order({pid: logs[pid] for pid in survivors})


def test_epoch_numbers_strictly_increase_across_failovers():
    config, sched, procs, inj, logs = build()
    inj.crash_at(0, 1.0)
    sched.run(until=100)
    e_after_first = procs[2].e_cur
    inj.crash_at(1, 101.0)
    sched.run(until=250)
    e_after_second = procs[2].e_cur
    assert e_after_second > e_after_first
    assert e_after_second.leader == 2
