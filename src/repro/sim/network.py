"""Simulated message-passing network.

Channels are pairwise, reliable and FIFO (the paper's prototype relies on
TCP, §7.1): messages between a given ``(src, dst)`` pair are delivered in
send order even when sampled latencies would reorder them. Channels never
create, corrupt or duplicate messages. A crashed process neither sends
nor receives.

The network also hosts the observability hooks used by the evaluation
harness and the verification layer:

* ``counts_by_kind`` — how many messages of each protocol kind were sent
  (drives the Table 1 message-complexity measurements).
* ``trace_hooks`` — callbacks invoked on every send, used by the
  genuineness checker to assert that only the sender and destinations of
  a multicast exchange messages for it.
"""

from __future__ import annotations

import random
from collections import Counter
from heapq import heappush
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .events import Scheduler
from .latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from .process import SimProcess

TraceHook = Callable[[int, int, Any, float], None]

#: Minimum spacing between two deliveries on one channel, used to preserve
#: FIFO order when jitter would reorder messages (models TCP in-order
#: delivery on one connection).
_FIFO_EPSILON = 1e-9


class Network:
    """Routes messages between registered processes.

    Args:
        scheduler: the shared discrete-event scheduler.
        latency: one-way latency model.
        rng: RNG used for latency sampling (derive via
            :func:`repro.sim.rng.child_rng` for determinism).
    """

    def __init__(self, scheduler: Scheduler, latency: LatencyModel, rng: random.Random):
        self.scheduler = scheduler
        self.latency = latency
        self.rng = rng
        self.processes: Dict[int, "SimProcess"] = {}
        self.counts_by_kind: Counter = Counter()
        self.messages_sent = 0
        self.trace_hooks: List[TraceHook] = []
        self._last_arrival: Dict[Tuple[int, int], float] = {}
        # Directed pair -> number of active blocks. Refcounting (rather
        # than a plain set) makes overlapping partitions compose: a pair
        # blocked by two partitions stays blocked until *both* are
        # lifted, so healing one partition cannot prematurely release
        # parked traffic of the other (which would break channel FIFO
        # for messages parked behind the still-standing block).
        self._blocked_pairs: Dict[Tuple[int, int], int] = {}
        # Messages caught by a partition. Channels are reliable (§2.1):
        # before the GST traffic is *delayed*, not lost, so parked
        # messages are released when the pair heals.
        self._parked: List[Tuple[int, int, Any]] = []

    def register(self, proc: "SimProcess") -> None:
        """Attach a process; its pid must be unique."""
        if proc.pid in self.processes:
            raise ValueError(f"duplicate pid {proc.pid}")
        self.processes[proc.pid] = proc

    def add_trace_hook(self, hook: TraceHook) -> None:
        """Register ``hook(src, dst, msg, depart_time)`` on every send."""
        self.trace_hooks.append(hook)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def block_pair(self, a: int, b: int) -> None:
        """Park all traffic between a and b (both directions): partition.

        Blocks are refcounted: blocking the same pair twice (e.g. via
        two overlapping :meth:`partition` calls) requires two unblocks
        before traffic flows again.
        """
        blocked = self._blocked_pairs
        blocked[(a, b)] = blocked.get((a, b), 0) + 1
        blocked[(b, a)] = blocked.get((b, a), 0) + 1

    def unblock_pair(self, a: int, b: int) -> None:
        """Drop one block on the pair; parked traffic is released once no
        block remains (and never sooner — see ``_blocked_pairs``)."""
        blocked = self._blocked_pairs
        for pair in ((a, b), (b, a)):
            count = blocked.get(pair, 0)
            if count > 1:
                blocked[pair] = count - 1
            elif count == 1:
                del blocked[pair]
        self._release_parked()

    def partition(self, side_a: List[int], side_b: List[int]) -> None:
        """Block all pairs across the two sides (traffic is delayed, not
        lost — the pre-GST asynchrony of §2.1)."""
        for a in side_a:
            for b in side_b:
                self.block_pair(a, b)

    def heal(self) -> None:
        """Remove all partitions and release parked traffic in order."""
        self._blocked_pairs.clear()
        self._release_parked()

    def _release_parked(self) -> None:
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        for src, dst, msg in parked:
            if (src, dst) in self._blocked_pairs:
                self._parked.append((src, dst, msg))
            else:
                self._deliver(src, dst, msg, self.scheduler.now)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def transmit(self, src: int, dst: int, msg: Any, depart_time: float) -> None:
        """Send ``msg`` from src to dst, departing at ``depart_time``.

        Called by :class:`~repro.sim.process.SimProcess` once the sender's
        CPU has finished the handler that produced the message. Local
        (self) messages skip the network but still go through the
        receiver's inbox, so handling them costs CPU like any other.

        This is the hottest function of the substrate: every wire message
        of every protocol passes through it once. The body is the fast
        path — trace hooks and fault injection only cost when actually in
        use, and delivery is inlined rather than delegated.
        """
        self.messages_sent += 1
        # All wire message classes carry a class-level ``kind`` (asserted
        # by the core/messages test suite); the try/except only triggers
        # for ad-hoc payloads injected by tests.
        try:
            kind = msg.kind
        except AttributeError:
            kind = None
        if kind is not None:
            self.counts_by_kind[kind] += 1
        if self.trace_hooks:
            for hook in self.trace_hooks:
                hook(src, dst, msg, depart_time)

        if self._blocked_pairs and (src, dst) in self._blocked_pairs:
            self._parked.append((src, dst, msg))
            return

        # Inlined delivery (see _deliver for the slow-path twin).
        receiver = self.processes.get(dst)
        if receiver is None:
            raise KeyError(f"unknown destination pid {dst}")
        if src == dst:
            arrival = depart_time
        else:
            arrival = depart_time + self.latency.sample(src, dst, self.rng)
            # Enforce per-channel FIFO (TCP-like): never deliver before a
            # previously sent message on the same channel.
            pair = (src, dst)
            last = self._last_arrival
            prev = last.get(pair)
            if prev is not None and arrival <= prev:
                arrival = prev + _FIFO_EPSILON
            last[pair] = arrival
        # Equivalent to scheduler.schedule(...) with the past-check
        # elided: arrival >= depart_time >= now by construction.
        sched = self.scheduler
        heappush(sched._heap, (arrival, sched._seq, receiver.enqueue_message, (src, msg)))
        sched._seq += 1

    def _deliver(self, src: int, dst: int, msg: Any, depart_time: float) -> None:
        """Slow-path delivery, used when parked traffic is released."""
        receiver = self.processes.get(dst)
        if receiver is None:
            raise KeyError(f"unknown destination pid {dst}")
        if src == dst:
            arrival = depart_time
        else:
            delay = self.latency.sample(src, dst, self.rng)
            arrival = depart_time + delay
            pair = (src, dst)
            prev = self._last_arrival.get(pair)
            if prev is not None and arrival <= prev:
                arrival = prev + _FIFO_EPSILON
            self._last_arrival[pair] = arrival
        self.scheduler.schedule(arrival, receiver.enqueue_message, (src, msg))
