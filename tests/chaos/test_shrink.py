"""Shrinker self-validation: a seeded protocol mutation must be found,
minimized, and deterministically reproduced (the chaos pipeline's own
end-to-end regression)."""

import pytest

from repro.chaos.explorer import CaseSpec, run_case
from repro.chaos.schedule import FaultEvent, Trigger
from repro.chaos.shrink import shrink_case

SCN = "lan-small"
#: Seed budget the explorer gets to find the injected bug.
SEED_BUDGET = 6


def find_violating_spec():
    for seed in range(SEED_BUDGET):
        spec = CaseSpec(scenario=SCN, seed=seed, mutation="no-quorum-wait")
        if run_case(spec).violations:
            return spec
    return None


@pytest.fixture(scope="module")
def violating_spec():
    spec = find_violating_spec()
    assert spec is not None, (
        f"no-quorum-wait mutation not detected within {SEED_BUDGET} seeds"
    )
    return spec


@pytest.fixture(scope="module")
def shrunk(violating_spec):
    result = shrink_case(violating_spec, max_runs=120)
    assert result is not None
    return result


class TestMutationSelfCheck:
    def test_bug_found_within_seed_budget(self, violating_spec):
        assert violating_spec is not None

    def test_shrinks_to_tiny_schedule(self, shrunk):
        assert shrunk.minimized_events <= 3
        assert shrunk.minimized_events <= shrunk.original_events
        assert shrunk.runs <= 120

    def test_minimized_schedule_still_violates_same_prop(self, shrunk):
        assert any(v.prop == shrunk.prop for v in shrunk.final.violations)

    def test_replay_reproduces_bit_identically(self, shrunk):
        replayed = run_case(shrunk.minimized)
        assert [v.to_dict() for v in replayed.violations] == [
            v.to_dict() for v in shrunk.final.violations
        ]
        assert replayed.to_dict() == shrunk.final.to_dict()


class TestShrinkMechanics:
    def test_clean_case_returns_none(self):
        assert shrink_case(CaseSpec(scenario=SCN, seed=0), max_runs=10) is None

    def test_irrelevant_events_are_dropped(self, violating_spec):
        # Pad the violating schedule with no-op delay events; the
        # shrinker must strip them back out (the mutation alone
        # triggers the violation).
        schedule = violating_spec.resolve_schedule()
        padding = [
            FaultEvent(
                kind="delay",
                trigger=Trigger(kind="at", time_ms=10.0 * (i + 1)),
                src=-1,
                dst=-1,
                extra_ms=2.0,
                duration_ms=5.0,
            )
            for i in range(3)
        ]
        padded = schedule.replace_events(list(schedule.events) + padding)
        result = shrink_case(violating_spec.with_schedule(padded), max_runs=120)
        assert result is not None
        assert result.minimized_events <= len(schedule.events)
