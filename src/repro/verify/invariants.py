"""Runtime invariant monitoring for PrimCast processes.

While the property checkers in :mod:`repro.verify.properties` validate
delivery logs *after* a run, the :class:`InvariantMonitor` rides along
*during* one: it wraps a process's r-deliver handler and re-checks
structural invariants of Algorithms 1–3 after every event, failing fast
at the exact event that broke one. Used by the test suite and the
failure-injection fuzz tests.

Checked invariants:

* **Clock monotonicity** — ``clock`` never decreases.
* **Epoch ordering** — ``E_prom >= E_cur`` always (line 7), both
  monotone non-decreasing.
* **Role consistency** — a primary owns its current epoch, a candidate
  owns its promised epoch.
* **T consistency** — the ``t_by_mid`` index matches the T sequence;
  pending ⊆ T's messages minus delivered; local timestamps in T are
  strictly increasing per epoch.
* **Advertised clocks** — ``min-clock(self)`` (what the group believes
  about us) never exceeds our actual clock; quorum-clock() never
  exceeds the largest member clock observation.
* **Delivery** — delivered finals are at or below the clock of the
  delivering process.
* **State GC** — the cached delivered-prefix length stays within the
  live T suffix and only counts delivered entries; the truncation base
  is never negative.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..core.epoch import Epoch
from ..core.messages import Multicast
from ..core.process import CANDIDATE, PRIMARY, PrimCastProcess
from .properties import PropertyViolation


class InvariantMonitor:
    """Wraps one process and re-checks invariants after every event.

    Wrapping is *idempotent per process*: the first monitor installs one
    ``on_r_deliver`` wrapper and later monitors attach to it instead of
    stacking another layer, so instrumentation that composes wrappers in
    arbitrary order (e.g. a :class:`~repro.core.spec.SpecRecorder` before
    or after the monitor) never double-runs the checks and never re-wraps
    an already-monitored handler.
    """

    def __init__(self, proc: PrimCastProcess) -> None:
        self.proc = proc
        self.checks_run = 0
        self._last_clock = proc.clock
        self._last_e_cur = proc.e_cur
        self._last_e_prom = proc.e_prom
        existing: Optional[List["InvariantMonitor"]] = getattr(
            proc, "_invariant_monitors", None
        )
        if existing is not None:
            # Already wrapped by a monitor (possibly below other
            # instrumentation layers such as a SpecRecorder): join the
            # installed wrapper instead of stacking another one.
            existing.append(self)
        else:
            monitors: List["InvariantMonitor"] = [self]
            proc._invariant_monitors = monitors  # type: ignore[attr-defined]
            original = proc.on_r_deliver

            def wrapped(origin: int, payload: object) -> None:
                original(origin, payload)
                if not proc.crashed:
                    for monitor in monitors:
                        monitor.check()

            proc.on_r_deliver = wrapped  # type: ignore[method-assign]
        proc.add_deliver_hook(self._on_deliver)

    def _fail(self, message: str) -> None:
        raise PropertyViolation(
            f"invariant violated at pid {self.proc.pid} "
            f"(t={self.proc.scheduler.now:.3f}): {message}",
            prop="invariant",
        )

    def _on_deliver(
        self, proc: PrimCastProcess, multicast: Multicast, final_ts: int
    ) -> None:
        if final_ts > proc.clock:
            self._fail(
                f"delivered {multicast.mid} with final ts {final_ts} "
                f"above own clock {proc.clock}"
            )

    def check(self) -> None:
        """Run all structural checks against the current state."""
        proc = self.proc
        self.checks_run += 1

        if proc.clock < self._last_clock:
            self._fail(f"clock went backwards: {self._last_clock} -> {proc.clock}")
        self._last_clock = proc.clock

        if proc.e_prom < proc.e_cur:
            self._fail(f"E_prom {proc.e_prom} < E_cur {proc.e_cur}")
        if proc.e_cur < self._last_e_cur:
            self._fail(f"E_cur went backwards: {self._last_e_cur} -> {proc.e_cur}")
        if proc.e_prom < self._last_e_prom:
            self._fail(f"E_prom went backwards: {self._last_e_prom} -> {proc.e_prom}")
        self._last_e_cur = proc.e_cur
        self._last_e_prom = proc.e_prom

        if proc.role == PRIMARY and proc.e_cur.leader != proc.pid:
            self._fail(f"primary but E_cur {proc.e_cur} owned by {proc.e_cur.leader}")
        if proc.role == CANDIDATE and proc.e_prom.leader != proc.pid:
            self._fail(f"candidate but E_prom {proc.e_prom} owned elsewhere")

        # T index consistency.
        if len(proc.t_by_mid) != len({m.mid for _, m, _ in proc.t_list}):
            self._fail("t_by_mid size does not match distinct T entries")
        for epoch, multicast, ts in proc.t_list:
            entry = proc.t_by_mid.get(multicast.mid)
            if entry is None:
                self._fail(f"T entry {multicast.mid} missing from index")
        for mid in proc.pending:
            if mid not in proc.t_by_mid:
                self._fail(f"pending {mid} not in T")
            if mid in proc.delivered:
                self._fail(f"pending {mid} already delivered")

        # Proposals strictly increase per epoch in T.
        last_by_epoch: Dict[Epoch, int] = {}
        for epoch, multicast, ts in proc.t_list:
            prev = last_by_epoch.get(epoch)
            if prev is not None and ts <= prev:
                self._fail(
                    f"non-increasing proposal in epoch {epoch}: {prev} -> {ts}"
                )
            last_by_epoch[epoch] = ts

        # State-GC bookkeeping: the delivered-prefix counter stays inside
        # the live suffix, and the truncation base never runs negative.
        if proc._t_base < 0:
            self._fail(f"negative truncation base {proc._t_base}")
        if not 0 <= proc._t_delivered_prefix <= len(proc.t_list):
            self._fail(
                f"delivered prefix {proc._t_delivered_prefix} outside "
                f"[0, {len(proc.t_list)}]"
            )
        for _, multicast, _ in proc.t_list[: proc._t_delivered_prefix]:
            if multicast.mid not in proc.delivered:
                self._fail(
                    f"prefix entry {multicast.mid} counted as delivered "
                    f"but not in delivered set"
                )

        # What the group can believe about our clock never exceeds it.
        if proc.min_clock(proc.pid) > proc.clock:
            self._fail(
                f"min-clock(self)={proc.min_clock(proc.pid)} "
                f"exceeds clock {proc.clock}"
            )
        member_max = max(
            proc.clocks.values.get(pid, 0) for pid in proc.group_members
        )
        if proc.quorum_clock() > member_max:
            self._fail("quorum-clock above every member observation")


def attach_monitors(
    processes: Union[Mapping[int, object], Iterable[object]]
) -> List[InvariantMonitor]:
    """Attach a monitor to every PrimCast process in a collection."""
    monitors: List[InvariantMonitor] = []
    procs: Iterable[object] = (
        processes.values() if isinstance(processes, Mapping) else processes
    )
    for proc in procs:
        if isinstance(proc, PrimCastProcess):
            monitors.append(InvariantMonitor(proc))
    return monitors
