"""Classic consensus-based genuine atomic multicast (§4.3, [19][23]).

The protocol family PrimCast descends from (Fritzke et al. '98 /
Guerraoui & Schiper '01): each group runs atomic broadcast — here a
:class:`~repro.consensus.ReplicatedLog` — and uses it *both* to maintain
the group's logical clock and to timestamp messages:

1. The sender sends ``m`` to the leader of each destination group.
2. The leader appends a PROPOSE entry; when the group log applies it,
   every member deterministically assigns the local timestamp
   ``clock + 1`` and the leader sends it to the other destination
   groups' leaders.
3. Once a leader holds local timestamps from every destination group it
   appends a COMMIT entry with the final timestamp (the max); applying
   it raises the group clock and makes ``m`` deliverable in final-
   timestamp order.

Collision-free latency: 1 (start) + 2 (propose consensus) + 1 (timestamp
exchange) + 2 (commit consensus) = **6 steps**; clock-update latency is
another 6, giving the failure-free **12 steps** the paper quotes — the
gap PrimCast's 3/5 is measured against. Not part of the paper's §7
evaluation; provided for the related-work comparison and as the
reference consumer of the consensus substrate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..consensus.log import ReplicatedLog
from ..core.config import GroupConfig
from ..core.messages import MessageId, Multicast
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.network import Network
from .base import GroupProtocolProcess
from .delivery import DeliveryQueue


class ClStart:
    """Step 1: sender → destination group leaders."""

    __slots__ = ("multicast",)
    kind = "start"

    def __init__(self, multicast: Multicast):
        self.multicast = multicast

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class ClTimestamp:
    """Step 2→3: a group's decided local timestamp, leader to leaders."""

    __slots__ = ("multicast", "group", "ts")
    kind = "cl-ts"

    def __init__(self, multicast: Multicast, group: int, ts: int):
        self.multicast = multicast
        self.group = group
        self.ts = ts

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class _LogEntry:
    """A group-log command: PROPOSE or COMMIT for one multicast."""

    __slots__ = ("action", "multicast", "final_ts")

    def __init__(self, action: str, multicast: Multicast, final_ts: Optional[int] = None):
        self.action = action
        self.multicast = multicast
        self.final_ts = final_ts


CLASSIC_KINDS = ("start", "cl-ts", "paxos-2a", "paxos-2b")


class ClassicProcess(GroupProtocolProcess):
    """One group member of the classic consensus-based multicast."""

    def __init__(
        self,
        pid: int,
        config: GroupConfig,
        scheduler: Scheduler,
        network: Network,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(pid, config, scheduler, network, cost_model)
        self.is_leader = config.initial_leader(self.gid) == pid
        self.clock = 0
        self._multicasts: Dict[MessageId, Multicast] = {}
        self._proposed: Set[MessageId] = set()  # leader-side dedup
        self._committed_appended: Set[MessageId] = set()
        self._local_ts: Dict[MessageId, int] = {}  # this group's ts
        self._remote_ts: Dict[MessageId, Dict[int, int]] = {}
        self._finals: Dict[MessageId, int] = {}  # committed finals
        self._queue = DeliveryQueue(self._min_bound)
        self.log = ReplicatedLog(
            pid,
            config.members(self.gid),
            send_fn=self._send_all,
            on_apply=self._apply_entry,
        )

    # ------------------------------------------------------------------
    # transport plumbing
    # ------------------------------------------------------------------

    def _send_all(self, pids: List[int], msg: Any) -> None:
        self.r_multicast(msg, pids)

    def a_multicast_m(self, multicast: Multicast) -> None:
        leaders = [self.config.initial_leader(g) for g in sorted(multicast.dest)]
        self.r_multicast(ClStart(multicast), leaders)

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        if self.log.handle(origin, payload):
            return
        if isinstance(payload, ClStart):
            self._on_start(payload.multicast)
        elif isinstance(payload, ClTimestamp):
            self._on_timestamp(payload)
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------

    def _on_start(self, multicast: Multicast) -> None:
        if not self.is_leader:
            raise AssertionError("start reached a non-leader")
        mid = multicast.mid
        if mid in self._proposed or mid in self.delivered:
            return
        self._proposed.add(mid)
        self._multicasts[mid] = multicast
        self.log.append(_LogEntry("propose", multicast))

    def _on_timestamp(self, msg: ClTimestamp) -> None:
        """Leaders collect every destination group's local timestamp."""
        mid = msg.mid
        self._multicasts.setdefault(mid, msg.multicast)
        self._remote_ts.setdefault(mid, {})[msg.group] = msg.ts
        self._maybe_append_commit(mid)

    def _maybe_append_commit(self, mid: MessageId) -> None:
        if not self.is_leader or mid in self._committed_appended:
            return
        multicast = self._multicasts.get(mid)
        if multicast is None or mid not in self._local_ts:
            return
        known = self._remote_ts.get(mid, {})
        others = [g for g in multicast.dest if g != self.gid]
        if not all(g in known for g in others):
            return
        final = max([self._local_ts[mid]] + [known[g] for g in others])
        self._committed_appended.add(mid)
        self.log.append(_LogEntry("commit", multicast, final))

    def _apply_entry(self, slot: int, entry: _LogEntry) -> None:
        """Deterministic application of the group log, at every member."""
        mid = entry.multicast.mid
        self._multicasts.setdefault(mid, entry.multicast)
        if entry.action == "propose":
            self.clock += 1
            self._local_ts[mid] = self.clock
            if mid not in self.delivered:
                self._queue.add_pending(mid)
            if self.is_leader:
                # Inform the other destination groups (their leaders).
                others = [
                    self.config.initial_leader(g)
                    for g in sorted(entry.multicast.dest)
                    if g != self.gid
                ]
                ts_msg = ClTimestamp(entry.multicast, self.gid, self.clock)
                if others:
                    self.r_multicast(ts_msg, others)
                self._maybe_append_commit(mid)
        else:  # commit
            final = entry.final_ts
            self._finals[mid] = final
            if final > self.clock:
                self.clock = final
            self._queue.add_pending(mid)  # no-op if already pending
            self._queue.commit(mid, final)
        self._try_deliver()

    def _min_bound(self, mid: MessageId) -> int:
        """Pending lower bound: the exact final once committed, else the
        group's own local timestamp (the final is the max over groups,
        hence at least the local one). The bound must tighten to the
        final at commit, or a committed high-final message would block
        smaller-final ones behind its stale local timestamp."""
        final = self._finals.get(mid)
        if final is not None:
            return final
        return self._local_ts.get(mid, 0)

    def _try_deliver(self) -> None:
        while True:
            popped = self._queue.pop_deliverable(self.clock)
            if popped is None:
                return
            mid, final = popped
            self._record_delivery(self._multicasts[mid], final)
