"""CLI behaviour of ``python -m repro.analysis``."""

import json

import pytest

from repro.analysis.base import RULES
from repro.analysis.cli import main
from repro.analysis.engine import module_name_for

BAD_SOURCE = """\
import random


def jitter(self):
    value = random.random()
    self.send(0, value)
    return value
"""

GOOD_SOURCE = """\
def double(x):
    return 2 * x
"""


def _write_scoped(tmp_path, name, source):
    """Write a fixture under a ``repro/core`` directory so the module
    name lands inside the determinism scope."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / name
    path.write_text(source)
    return path


def test_clean_file_exits_zero(tmp_path, capsys):
    path = _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_violation_exits_one_with_location(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert f"{path}:5:" in out


def test_json_report_shape(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    assert main([str(path), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_analyzed"] == 1
    assert report["summary"]["errors"] == 1
    (finding,) = report["findings"]
    assert finding["rule"] == "DET001"
    assert finding["severity"] == "error"
    assert finding["line"] == 5
    assert finding["context"].startswith("repro.core.bad::")


def test_rule_filter_limits_the_run(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    # DET003 alone does not fire on this fixture.
    assert main([str(path), "--rule", "DET003"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    assert main([str(path), "--rule", "DET999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "PROTO101", "PROTO103"):
        assert rule_id in out


def test_module_name_derivation():
    from pathlib import Path

    assert (
        module_name_for(Path("src/repro/core/process.py")) == "repro.core.process"
    )
    assert module_name_for(Path("src/repro/sim/__init__.py")) == "repro.sim"
    assert module_name_for(Path("elsewhere/tool.py")) == "tool"


# -- SARIF ----------------------------------------------------------------


def test_sarif_report_to_file(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    sarif_path = tmp_path / "out.sarif"
    assert main([str(path), "--sarif", str(sarif_path)]) == 1
    capsys.readouterr()

    log = json.loads(sarif_path.read_text())
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    # One descriptor per registered rule, sorted by id.
    ids = [r["id"] for r in driver["rules"]]
    assert ids == sorted(RULES)

    result = next(r for r in run["results"] if r["ruleId"] == "DET001")
    assert result["level"] == "error"
    assert ids[result["ruleIndex"]] == "DET001"
    (location,) = result["locations"]
    region = location["physicalLocation"]["region"]
    assert region["startLine"] == 5
    assert region["startColumn"] >= 1  # SARIF columns are 1-based
    (logical,) = location["logicalLocations"]
    assert logical["fullyQualifiedName"].startswith("repro.core.bad::")


def test_sarif_clean_run_has_empty_results(tmp_path, capsys):
    path = _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    assert main([str(path), "--sarif", "-"]) == 0
    out = capsys.readouterr().out
    log, _ = json.JSONDecoder().raw_decode(out)
    assert log["runs"][0]["results"] == []
    # Rule metadata ships even without findings.
    assert log["runs"][0]["tool"]["driver"]["rules"]


# -- incremental cache ----------------------------------------------------


def _json_run(argv, capsys):
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


def test_cache_warm_run_reproduces_cold_findings(tmp_path, capsys):
    _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    cache_dir = tmp_path / "cache"
    argv = [str(tmp_path / "repro"), "--json", "--cache-dir", str(cache_dir)]

    code, cold = _json_run(argv, capsys)
    assert code == 1
    assert cold["cache"] == {"hits": 0, "misses": 2}

    code, warm = _json_run(argv, capsys)
    assert code == 1
    assert warm["cache"] == {"hits": 2, "misses": 0}
    assert warm["findings"] == cold["findings"]


def test_cache_hit_skips_parsing_entirely(tmp_path, capsys, monkeypatch):
    _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    cache_dir = tmp_path / "cache"
    argv = [str(tmp_path / "repro"), "--json", "--cache-dir", str(cache_dir)]
    _json_run(argv, capsys)

    # A warm run must not even load the file: break load_module and the
    # findings still come back, byte-identical, from the cache.
    import repro.analysis.engine as engine

    def boom(path):
        raise AssertionError(f"cache miss parsed {path}")

    monkeypatch.setattr(engine, "load_module", boom)
    code, warm = _json_run(argv, capsys)
    assert code == 1
    assert warm["cache"] == {"hits": 1, "misses": 0}


def test_cache_invalidated_by_content_change(tmp_path, capsys):
    path = _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    cache_dir = tmp_path / "cache"
    argv = [str(tmp_path / "repro"), "--json", "--cache-dir", str(cache_dir)]
    _json_run(argv, capsys)

    path.write_text(GOOD_SOURCE)
    code, rerun = _json_run(argv, capsys)
    assert code == 0
    assert rerun["cache"] == {"hits": 0, "misses": 1}
    assert rerun["findings"] == []


def test_cache_keyed_by_rule_set(tmp_path, capsys):
    """Different --rule selections get different fingerprints: a cached
    full-run result must not answer for a restricted run."""
    _write_scoped(tmp_path, "bad.py", BAD_SOURCE)
    cache_dir = tmp_path / "cache"
    base = [str(tmp_path / "repro"), "--json", "--cache-dir", str(cache_dir)]
    _json_run(base, capsys)

    code, restricted = _json_run(base + ["--rule", "DET003"], capsys)
    assert code == 0
    assert restricted["cache"] == {"hits": 0, "misses": 1}


# -- internal errors ------------------------------------------------------


class _CrashingRule:
    rule_id = "CRASH999"
    title = "deliberately crashing test rule"
    default_severity = "error"

    def applies_to(self, module, config):
        return True

    def check(self, mod, config):
        raise ZeroDivisionError("rule bug")


def test_internal_rule_error_exits_two_naming_the_file(
    tmp_path, capsys, monkeypatch
):
    path = _write_scoped(tmp_path, "good.py", GOOD_SOURCE)
    monkeypatch.setitem(RULES, "CRASH999", _CrashingRule())
    assert main([str(path)]) == 2
    err = capsys.readouterr().err
    # Exit 2 (not 1): this is a bug in the analysis, not a finding —
    # and the message names the file and rule for diagnosis.
    assert str(path) in err
    assert "CRASH999" in err
    assert "ZeroDivisionError" in err
