"""Unit tests for latency models."""

import random

import pytest

from repro.sim.latency import ConstantLatency, JitteredLatency, SiteMatrixLatency


@pytest.fixture
def rng():
    return random.Random(42)


class TestConstantLatency:
    def test_sample_equals_mean(self, rng):
        model = ConstantLatency(3.5)
        assert model.sample(0, 1, rng) == 3.5
        assert model.mean(0, 1) == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestJitteredLatency:
    def test_mean_is_configured_value(self, rng):
        model = JitteredLatency(10.0, 0.05)
        assert model.mean(3, 7) == 10.0

    def test_samples_cluster_around_mean(self, rng):
        model = JitteredLatency(10.0, 0.05)
        samples = [model.sample(0, 1, rng) for _ in range(2000)]
        avg = sum(samples) / len(samples)
        assert abs(avg - 10.0) < 0.1
        spread = (sum((s - avg) ** 2 for s in samples) / len(samples)) ** 0.5
        assert 0.3 < spread < 0.8  # ~5% of 10ms

    def test_samples_never_below_floor(self, rng):
        model = JitteredLatency(1.0, 2.0)  # huge jitter
        assert all(model.sample(0, 1, rng) >= 0.1 for _ in range(500))

    def test_zero_stddev_is_deterministic(self, rng):
        model = JitteredLatency(5.0, 0.0)
        assert model.sample(0, 1, rng) == 5.0

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            JitteredLatency(-1.0)
        with pytest.raises(ValueError):
            JitteredLatency(1.0, -0.5)


class TestSiteMatrixLatency:
    def _model(self, stddev=0.0):
        site_of = {0: 0, 1: 0, 2: 1, 3: 2}
        rtt = [
            [0.1, 60.0, 76.0],
            [60.0, 0.1, 130.0],
            [76.0, 130.0, 0.1],
        ]
        return SiteMatrixLatency(site_of, rtt, stddev_frac=stddev)

    def test_one_way_is_half_rtt(self, rng):
        model = self._model()
        assert model.mean(0, 2) == 30.0
        assert model.mean(2, 3) == 65.0
        assert model.sample(0, 2, rng) == 30.0

    def test_same_site_uses_diagonal(self, rng):
        model = self._model()
        assert model.mean(0, 1) == 0.05

    def test_symmetry(self, rng):
        model = self._model()
        assert model.mean(0, 3) == model.mean(3, 0)

    def test_jitter_respects_floor(self, rng):
        model = self._model(stddev=1.0)
        for _ in range(200):
            assert model.sample(0, 2, rng) >= 3.0  # 10% of 30ms

    def test_rejects_asymmetric_matrix(self):
        with pytest.raises(ValueError):
            SiteMatrixLatency({0: 0, 1: 1}, [[0, 1], [2, 0]])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            SiteMatrixLatency({0: 0}, [[0, 1]])

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            SiteMatrixLatency({0: 5}, [[0.0]])

    def test_rejects_negative_rtt(self):
        with pytest.raises(ValueError):
            SiteMatrixLatency({0: 0, 1: 1}, [[0, -3], [-3, 0]])
