"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit codes: 0 — clean (or warnings only), 1 — at least one
error-severity finding, 2 — usage error. ``--json`` emits a
machine-readable report (consumed by the CI lint job's artifact upload);
the default output is one ``path:line:col: RULE severity: message``
line per finding, the shape editors and CI annotations both understand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .base import RULES
from .config import DEFAULT_CONFIG, AnalysisConfig
from .engine import analyze_paths, iter_python_files


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & protocol-contract static analysis for the "
        "PrimCast reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only the given rule id (repeatable)",
    )
    parser.add_argument(
        "--no-default-allow",
        action="store_true",
        help="ignore the built-in allowlist (show reviewed exemptions too)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id}  [{rule.default_severity}]  {rule.title}")
        return 0

    config: AnalysisConfig = DEFAULT_CONFIG
    if args.no_default_allow:
        config = AnalysisConfig(allow={})

    rules = None
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES[r] for r in args.rule]

    paths = [Path(p) for p in args.paths]
    try:
        files = iter_python_files(paths)
        findings = analyze_paths(paths, config, rules)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]

    if args.json:
        report = {
            "version": 1,
            "files_analyzed": len(files),
            "rules": sorted(RULES if rules is None else [r.rule_id for r in rules]),
            "summary": {"errors": len(errors), "warnings": len(warnings)},
            "findings": [f.to_json() for f in findings],
        }
        print(json.dumps(report, indent=2, sort_keys=False))
    else:
        for finding in findings:
            print(finding.format())
        noun = "file" if len(files) == 1 else "files"
        print(
            f"repro.analysis: {len(files)} {noun}, "
            f"{len(errors)} error(s), {len(warnings)} warning(s)"
        )
    return 1 if errors else 0
